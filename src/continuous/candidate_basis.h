// CandidateBasis — the prefetched, self-contained evaluation state of one
// continuous-query session (ROADMAP "moving issuers" item).
//
// A continuous query is registered once and then re-evaluated at every
// position update of its (imprecise) issuer. Re-running the full engine
// per step wastes work: while the issuer region stays inside a *valid
// region* V, the set of objects any of the eight query methods can touch
// is bounded by Lemma 1 — nothing outside the Minkowski expansion
// V ⊕ R(w, h) can qualify from any placement U0' ⊆ V. The basis therefore
// prefetches exactly that candidate set *once* (object copies, with their
// U-catalogs) and bulk-loads miniature indexes over it with the engine's
// own page geometry. Every later update inside V replays the ordinary
// evaluators against the mini indexes (continuous/replay.h) and gets an
// answer bit-identical to a one-shot query on the full engine, because
//   - a candidate's probability is a pure function of (issuer, object,
//     spec, options) — Monte-Carlo streams are seeded per candidate from
//     MixSeeds(mc_seed, object id), so probabilities cannot depend on
//     traversal order or index shape;
//   - the evaluators' geometric filters are exact leaf-level tests, so a
//     smaller tree over a superset of the reachable candidates admits the
//     same survivor set;
//   - C-IUQ/PTI pruning is object-dominated (the per-object prune test is
//     at least as strong as any subtree test), so the mini PTI admits the
//     same survivors as the monolithic one — the invariant the sharded
//     tier already relies on.
//
// The basis holds *copies*, so it does not pin engine snapshots; staleness
// is detected by comparing the recorded epoch against the engine's.

#ifndef ILQ_CONTINUOUS_CANDIDATE_BASIS_H_
#define ILQ_CONTINUOUS_CANDIDATE_BASIS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/batch.h"
#include "core/engine.h"
#include "geometry/rect.h"
#include "index/pti.h"
#include "index/rtree.h"
#include "object/point_object.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief Prefetched candidates + mini indexes covering one valid region.
///
/// Exactly one object family is populated, matching the registered
/// method's dataset (QueryMethodUsesPoints): points + point_index for the
/// IPQ family, uncertains + uncertain_index (+ pti when the method needs
/// it) for the IUQ family. Uncertain mini-index ids are *positions into
/// `uncertains`*, mirroring the engine's own id convention, so the
/// evaluators run unchanged.
struct CandidateBasis {
  /// Issuer placements this basis covers: replay is exact for every
  /// issuer whose uncertainty region is contained in it.
  Rect valid_region = Rect::Empty();

  /// The prefetch range valid_region ⊕ R(w, h) — every object whose box
  /// intersects it is in the basis (Lemma 1 bound over all of V).
  Rect prefetch_box = Rect::Empty();

  /// Engine epoch the candidates were copied from. Any engine update
  /// invalidates the basis (epoch mismatch), conservatively — the update
  /// may not have touched the prefetch box, but epochs are cheap and
  /// races are not.
  uint64_t epoch = 0;

  std::vector<PointObject> points;
  std::optional<RTree> point_index;

  std::vector<UncertainObject> uncertains;  ///< copies incl. U-catalogs
  std::optional<RTree> uncertain_index;     ///< ids = positions
  std::optional<PTI> pti;  ///< built only for kCiuqPti, non-empty sets

  size_t candidate_count() const { return points.size() + uncertains.size(); }
};

/// Builds the basis for \p method over \p valid_region: prefetches every
/// object of the method's dataset intersecting valid_region ⊕ R(spec.w,
/// spec.h) from the engine's current snapshot and bulk-loads mini indexes
/// with the engine's page geometry. The PTI is built only when \p method
/// is kCiuqPti and candidates exist (empty sets replay to empty answers
/// without one, exactly like the engine).
Result<CandidateBasis> BuildCandidateBasis(const QueryEngine& engine,
                                           QueryMethod method,
                                           const Rect& valid_region,
                                           const RangeQuerySpec& spec);

}  // namespace ilq

#endif  // ILQ_CONTINUOUS_CANDIDATE_BASIS_H_
