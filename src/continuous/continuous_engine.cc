#include "continuous/continuous_engine.h"

#include <algorithm>
#include <utility>

namespace ilq {

ContinuousEngine::ContinuousEngine(const QueryEngine* engine,
                                   ContinuousOptions options)
    : engine_(engine), options_(options) {}

double ContinuousEngine::ResolveHorizon(const Rect& region,
                                        const BatchSpec* spec) const {
  if (options_.horizon > 0.0) return options_.horizon;
  double h = std::max(region.Width(), region.Height());
  if (h <= 0.0 && spec != nullptr) {
    h = std::max(spec->query.w, spec->query.h);
  }
  return h > 0.0 ? h : 1.0;
}

Status ContinuousEngine::Reevaluate(Session* session,
                                    const UncertainObject& issuer,
                                    ContinuousAnswer* out) {
  const Rect valid =
      issuer.region().Expanded(session->horizon, session->horizon);
  if (session->inn) {
    Result<InnBasis> basis = BuildInnBasis(*engine_, valid);
    ILQ_RETURN_NOT_OK(basis.status());
    session->inn_basis = std::move(basis).ValueOrDie();
    out->answers = ReplayInn(session->inn_basis, issuer,
                             session->inn_options);
    CanonicalizeAnswers(&out->answers);
    out->support_margin =
        InnSupportMargin(session->inn_basis, issuer.region(), out->answers);
    out->valid_region = session->inn_basis.valid_region;
    out->epoch = session->inn_basis.epoch;
  } else {
    Result<CandidateBasis> basis =
        BuildCandidateBasis(*engine_, session->method, valid,
                            session->spec.query);
    ILQ_RETURN_NOT_OK(basis.status());
    session->basis = std::move(basis).ValueOrDie();
    out->answers = ReplayQueryMethod(session->basis, engine_->config(),
                                     session->method, issuer, session->spec);
    out->valid_region = session->basis.valid_region;
    out->epoch = session->basis.epoch;
  }
  out->revalidated = false;
  reevaluations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ContinuousEngine::Answer(Session* session,
                                const UncertainObject& issuer,
                                ContinuousAnswer* out) {
  if (issuer.region().IsEmpty()) {
    return Status::InvalidArgument("issuer region must be non-empty");
  }
  const Rect& valid = session->inn ? session->inn_basis.valid_region
                                   : session->basis.valid_region;
  const uint64_t basis_epoch =
      session->inn ? session->inn_basis.epoch : session->basis.epoch;
  const bool covered = options_.reuse && valid.ContainsRect(issuer.region()) &&
                       basis_epoch == engine_->epoch();
  if (!covered) return Reevaluate(session, issuer, out);

  if (session->inn) {
    out->answers = ReplayInn(session->inn_basis, issuer,
                             session->inn_options);
    CanonicalizeAnswers(&out->answers);
    out->support_margin =
        InnSupportMargin(session->inn_basis, issuer.region(), out->answers);
  } else {
    out->answers = ReplayQueryMethod(session->basis, engine_->config(),
                                     session->method, issuer, session->spec);
  }
  out->valid_region = valid;
  out->epoch = basis_epoch;
  out->revalidated = true;
  validations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<ContinuousEngine::Registered> ContinuousEngine::Register(
    QueryMethod method, const BatchSpec& spec,
    const UncertainObject& issuer) {
  if (issuer.region().IsEmpty()) {
    return Status::InvalidArgument("issuer region must be non-empty");
  }
  auto session = std::make_shared<Session>();
  session->inn = false;
  session->method = method;
  session->spec = spec;
  session->horizon = ResolveHorizon(issuer.region(), &spec);

  Registered registered;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    ILQ_RETURN_NOT_OK(Reevaluate(session.get(), issuer, &registered.answer));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered.id = next_id_++;
    sessions_.emplace(registered.id, std::move(session));
  }
  registrations_.fetch_add(1, std::memory_order_relaxed);
  return registered;
}

Result<ContinuousEngine::Registered> ContinuousEngine::RegisterInn(
    const InnOptions& options, const UncertainObject& issuer) {
  if (issuer.region().IsEmpty()) {
    return Status::InvalidArgument("issuer region must be non-empty");
  }
  auto session = std::make_shared<Session>();
  session->inn = true;
  session->inn_options = options;
  session->horizon = ResolveHorizon(issuer.region(), nullptr);

  Registered registered;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    ILQ_RETURN_NOT_OK(Reevaluate(session.get(), issuer, &registered.answer));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered.id = next_id_++;
    sessions_.emplace(registered.id, std::move(session));
  }
  registrations_.fetch_add(1, std::memory_order_relaxed);
  return registered;
}

ContinuousEngine::SessionPtr ContinuousEngine::FindSession(
    SubscriptionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<ContinuousAnswer> ContinuousEngine::UpdatePosition(
    SubscriptionId id, const UncertainObject& issuer) {
  const SessionPtr session = FindSession(id);
  if (session == nullptr) {
    return Status::NotFound("unknown subscription id");
  }
  ContinuousAnswer answer;
  std::lock_guard<std::mutex> lock(session->mu);
  ILQ_RETURN_NOT_OK(Answer(session.get(), issuer, &answer));
  return answer;
}

Status ContinuousEngine::Unregister(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("unknown subscription id");
  }
  unregistrations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

ContinuousStats ContinuousEngine::stats() const {
  ContinuousStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.active = sessions_.size();
  }
  stats.registrations = registrations_.load(std::memory_order_relaxed);
  stats.validations = validations_.load(std::memory_order_relaxed);
  stats.reevaluations = reevaluations_.load(std::memory_order_relaxed);
  stats.unregistrations = unregistrations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ilq
