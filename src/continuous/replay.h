// Index-free re-evaluation of one continuous query against its prefetched
// CandidateBasis. ReplayQueryMethod mirrors core/batch.h's RunQueryMethod
// dispatch exactly, but runs the evaluator free functions over the basis's
// mini indexes instead of the engine's — see candidate_basis.h for why the
// answers are bit-identical to a one-shot query whenever the issuer region
// is contained in the basis's valid region and the epoch still matches.

#ifndef ILQ_CONTINUOUS_REPLAY_H_
#define ILQ_CONTINUOUS_REPLAY_H_

#include "continuous/candidate_basis.h"
#include "core/batch.h"
#include "core/engine.h"
#include "index/index_stats.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Re-evaluates \p method for \p issuer against \p basis, using the same
/// EvalOptions/BasicEvalOptions the engine would (\p config is the owning
/// engine's config). Answers come back canonicalized (CanonicalizeAnswers)
/// so callers compare them against equally canonicalized one-shot answers.
///
/// Preconditions (checked): the basis covers the method's dataset family
/// (QueryMethodUsesPoints) and basis.valid_region contains issuer.region().
/// Staleness (basis.epoch vs the live engine) is the *caller's* contract —
/// replay itself is a pure function of (basis, issuer, spec).
AnswerSet ReplayQueryMethod(const CandidateBasis& basis,
                            const EngineConfig& config, QueryMethod method,
                            const UncertainObject& issuer,
                            const BatchSpec& spec,
                            IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CONTINUOUS_REPLAY_H_
