// Continuous imprecise-nearest-neighbour sessions (the probabilistic-
// Voronoi-style path of the moving-issuers ROADMAP item).
//
// Coverage bound: pick the two objects nearest to the valid region's
// centre as anchors a1, a2 and let
//   R = max over the four corners c of V of max(dist(c, a1), dist(c, a2)).
// For any issuer position p ∈ V, dist(p, ai) ≤ R (distance to a fixed
// point is a convex function of p, maximized at a corner), so p's two
// nearest objects both lie within R of p — and every object within R of
// any p ∈ V satisfies MinDistanceTo(V) ≤ R. The basis therefore keeps
// exactly the objects with V.MinDistanceTo(s) ≤ R; EvaluateINN's
// per-sample 2-NN probe sees the same top-2 (hence the same winner) on the
// mini index as on the full one, and the whole Monte-Carlo tally replays
// bit-identically. The one caveat: a ≥3-way *exact* distance tie can
// surface a different tied pair from a differently-shaped tree — a
// measure-zero event for continuous pdfs, same boundary semantics the
// paper accepts for Qp-equality.
//
// The valid region doubles as a probabilistic-Voronoi cell proxy: the
// advisory support margin samples perpendicular bisectors between the
// current winner and every rival candidate and reports how far the issuer
// region can translate before it first touches one — i.e. before the
// dominant NN can change.

#ifndef ILQ_CONTINUOUS_INN_SESSION_H_
#define ILQ_CONTINUOUS_INN_SESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/inn.h"
#include "geometry/rect.h"
#include "index/rtree.h"
#include "object/point_object.h"

namespace ilq {

/// Prefetched nearest-neighbour candidates covering one valid region.
struct InnBasis {
  Rect valid_region = Rect::Empty();
  uint64_t epoch = 0;

  /// The coverage radius R above (0 when the point set is empty).
  double radius = 0.0;

  /// Candidates with V.MinDistanceTo(location) ≤ radius, sorted by id;
  /// kept alongside the index for bisector-margin evaluation.
  std::vector<PointObject> candidates;
  std::optional<RTree> index;
};

/// Builds the basis over \p valid_region from the engine's current
/// snapshot (mini index bulk-loaded with the engine's page geometry).
Result<InnBasis> BuildInnBasis(const QueryEngine& engine,
                               const Rect& valid_region);

/// Monte-Carlo INN replayed on the mini index — bit-identical to
/// EvaluateINN on the engine's point index for any issuer whose region is
/// contained in basis.valid_region (modulo the ≥3-way exact-tie caveat in
/// the file comment).
AnswerSet ReplayInn(const InnBasis& basis, const UncertainObject& issuer,
                    const InnOptions& options, IndexStats* stats = nullptr);

/// Advisory stability margin: the smallest distance from \p issuer_region
/// to the perpendicular bisector between the winner (highest-probability
/// answer, ties to smaller id) and any other basis candidate. While the
/// issuer region moves less than this, the winning object cannot change.
/// Returns +inf when fewer than two candidates exist, 0 when a bisector
/// already crosses the region or \p answers is empty.
double InnSupportMargin(const InnBasis& basis, const Rect& issuer_region,
                        const AnswerSet& answers);

}  // namespace ilq

#endif  // ILQ_CONTINUOUS_INN_SESSION_H_
