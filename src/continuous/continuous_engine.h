// ContinuousEngine — moving issuers over a QueryEngine (ROADMAP "moving
// issuers & continuous queries").
//
// An issuer registers a query once (method + spec, or an INN session) and
// then streams position updates. Every answer comes back with a *valid
// region*: a region of issuer-region placements over which the session's
// prefetched CandidateBasis provably covers evaluation, so any update whose
// imprecise region stays inside it is answered by index-free replay over
// the basis — bit-identical to a one-shot query on the engine (see
// candidate_basis.h / inn_session.h for the per-family arguments) without
// touching the engine's indexes. Leaving the valid region, or any engine
// epoch change, invalidates the basis and triggers one re-evaluation
// (prefetch + replay) that also re-centres the valid region on the new
// position. The validations / re-evaluations split is exposed in
// ContinuousStats; the serving layer (serve/subscription_manager.h)
// multiplexes thousands of these sessions and folds the same counters into
// ServeStats.

#ifndef ILQ_CONTINUOUS_CONTINUOUS_ENGINE_H_
#define ILQ_CONTINUOUS_CONTINUOUS_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "continuous/candidate_basis.h"
#include "continuous/inn_session.h"
#include "continuous/replay.h"
#include "core/batch.h"
#include "core/engine.h"
#include "core/inn.h"
#include "geometry/rect.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Session identifier handed out by Register*; stable until Unregister.
using SubscriptionId = uint64_t;

/// \brief Knobs shared by every session of one ContinuousEngine.
struct ContinuousOptions {
  /// Half-extent added on every side of the issuer's region to form the
  /// valid region V = U0.Expanded(horizon, horizon). Larger horizons make
  /// re-evaluation rarer but prefetch more candidates per basis. <= 0
  /// picks max(width, height) of the issuer region at (re)registration
  /// (falling back to max(spec.w, spec.h), then 1).
  double horizon = 0.0;

  /// When false, every UpdatePosition re-evaluates (basis rebuild) even
  /// inside the valid region — the naive streaming baseline the
  /// continuous_throughput bench sweeps against.
  bool reuse = true;
};

/// \brief One continuous answer: the AnswerSet plus its coverage proof.
struct ContinuousAnswer {
  AnswerSet answers;  ///< canonicalized (CanonicalizeAnswers)

  /// Issuer-region placements covered by the session's current basis:
  /// any subsequent update with issuer.region() ⊆ valid_region (and an
  /// unchanged engine epoch) is answered without touching the engine.
  Rect valid_region = Rect::Empty();

  /// True when this answer was replayed from the existing basis
  /// (validation); false when the basis was (re)built (re-evaluation).
  bool revalidated = false;

  /// Engine epoch the answering basis was prefetched from.
  uint64_t epoch = 0;

  /// INN sessions only: advisory distance the issuer region can translate
  /// before the dominant nearest neighbour can change (see
  /// InnSupportMargin). 0 for range/threshold sessions.
  double support_margin = 0.0;
};

/// Monotone counters over all sessions of one ContinuousEngine.
struct ContinuousStats {
  uint64_t active = 0;           ///< currently registered sessions
  uint64_t registrations = 0;    ///< Register / RegisterInn calls
  uint64_t validations = 0;      ///< updates answered inside the valid region
  uint64_t reevaluations = 0;    ///< basis (re)builds, registrations included
  uint64_t unregistrations = 0;  ///< successful Unregister calls
};

/// \brief Register/UpdatePosition/Unregister over a QueryEngine.
///
/// Thread safety: all member functions are safe to call concurrently, and
/// concurrently with engine updates. Each session is answered under its own
/// lock against exactly one basis epoch (the epoch is returned with the
/// answer), so concurrent ApplyUpdates never produce torn answers —
/// an update between basis build and replay simply means the answer is
/// coherent with the (slightly) older epoch, exactly like a one-shot query
/// that loaded its snapshot before the update published.
class ContinuousEngine {
 public:
  /// \p engine must outlive this object.
  explicit ContinuousEngine(const QueryEngine* engine,
                            ContinuousOptions options = ContinuousOptions{});

  struct Registered {
    SubscriptionId id = 0;
    ContinuousAnswer answer;
  };

  /// Registers one range/threshold session (any of the eight QueryMethods)
  /// and evaluates it at the issuer's initial position.
  Result<Registered> Register(QueryMethod method, const BatchSpec& spec,
                              const UncertainObject& issuer);

  /// Registers one INN session (§7 nearest-neighbour path) and evaluates
  /// it at the issuer's initial position.
  Result<Registered> RegisterInn(const InnOptions& options,
                                 const UncertainObject& issuer);

  /// Answers the session at the issuer's new (imprecise) position:
  /// replayed from the current basis when issuer.region() is inside the
  /// valid region and the engine epoch is unchanged, re-evaluated (basis
  /// rebuild re-centred on the new position) otherwise.
  Result<ContinuousAnswer> UpdatePosition(SubscriptionId id,
                                          const UncertainObject& issuer);

  /// Drops the session. kNotFound for unknown ids.
  Status Unregister(SubscriptionId id);

  ContinuousStats stats() const;

  const QueryEngine& engine() const { return *engine_; }
  const ContinuousOptions& options() const { return options_; }

 private:
  struct Session {
    std::mutex mu;
    bool inn = false;
    QueryMethod method = QueryMethod::kIpq;
    BatchSpec spec;
    InnOptions inn_options;
    double horizon = 0.0;
    CandidateBasis basis;  // range/threshold sessions
    InnBasis inn_basis;    // INN sessions
  };
  using SessionPtr = std::shared_ptr<Session>;

  // (Re)builds the session's basis around \p issuer and answers; assumes
  // session->mu is held.
  Status Reevaluate(Session* session, const UncertainObject& issuer,
                    ContinuousAnswer* out);
  // Answers \p session for \p issuer, replaying when covered; assumes
  // session->mu is held.
  Status Answer(Session* session, const UncertainObject& issuer,
                ContinuousAnswer* out);

  SessionPtr FindSession(SubscriptionId id) const;
  double ResolveHorizon(const Rect& region, const BatchSpec* spec) const;

  const QueryEngine* engine_;
  ContinuousOptions options_;

  mutable std::mutex mu_;  // guards sessions_ and next_id_
  SubscriptionId next_id_ = 1;
  std::unordered_map<SubscriptionId, SessionPtr> sessions_;

  std::atomic<uint64_t> registrations_{0};
  std::atomic<uint64_t> validations_{0};
  std::atomic<uint64_t> reevaluations_{0};
  std::atomic<uint64_t> unregistrations_{0};
};

}  // namespace ilq

#endif  // ILQ_CONTINUOUS_CONTINUOUS_ENGINE_H_
