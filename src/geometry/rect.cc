#include "geometry/rect.h"

#include <cstdio>

namespace ilq {

std::string Rect::ToString() const {
  if (IsEmpty()) return "[empty]";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]", xmin, xmax, ymin,
                ymax);
  return buf;
}

}  // namespace ilq
