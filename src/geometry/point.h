// 2-D point type shared by every module.

#ifndef ILQ_GEOMETRY_POINT_H_
#define ILQ_GEOMETRY_POINT_H_

#include <cmath>

namespace ilq {

/// \brief A 2-D point (or vector) with double coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const {
    return Point(x + o.x, y + o.y);
  }
  constexpr Point operator-(const Point& o) const {
    return Point(x - o.x, y - o.y);
  }
  constexpr Point operator*(double s) const { return Point(x * s, y * s); }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }

  /// Euclidean distance to \p o.
  double DistanceTo(const Point& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Squared Euclidean distance (avoids the sqrt in comparisons).
  constexpr double SquaredDistanceTo(const Point& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return dx * dx + dy * dy;
  }
};

}  // namespace ilq

#endif  // ILQ_GEOMETRY_POINT_H_
