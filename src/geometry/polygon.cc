#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

namespace ilq {

namespace {

// Twice the signed area of triangle (a, b, c); > 0 for a CCW turn.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

// Removes consecutive duplicates and collinear middle vertices from a CCW
// chain (treats the list as cyclic).
std::vector<Point> Canonicalize(std::vector<Point> v) {
  // Drop exact consecutive duplicates first.
  std::vector<Point> dedup;
  for (const Point& p : v) {
    if (dedup.empty() || !(dedup.back() == p)) dedup.push_back(p);
  }
  if (dedup.size() > 1 && dedup.front() == dedup.back()) dedup.pop_back();
  if (dedup.size() < 3) return dedup;

  std::vector<Point> out;
  const size_t n = dedup.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& prev = dedup[(i + n - 1) % n];
    const Point& cur = dedup[i];
    const Point& next = dedup[(i + 1) % n];
    if (std::abs(Cross(prev, cur, next)) > 1e-12) out.push_back(cur);
  }
  return out;
}

}  // namespace

Result<ConvexPolygon> ConvexPolygon::MakeConvex(std::vector<Point> vertices) {
  std::vector<Point> v = Canonicalize(std::move(vertices));
  if (v.size() < 3) {
    return Status::InvalidArgument(
        "convex polygon needs at least 3 non-collinear vertices");
  }
  const size_t n = v.size();
  for (size_t i = 0; i < n; ++i) {
    if (Cross(v[i], v[(i + 1) % n], v[(i + 2) % n]) < 0.0) {
      return Status::InvalidArgument(
          "vertices are not in counter-clockwise convex position");
    }
  }
  return ConvexPolygon(std::move(v));
}

Result<ConvexPolygon> ConvexPolygon::ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n < 3) {
    return Status::InvalidArgument("convex hull needs at least 3 points");
  }
  std::vector<Point> hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {  // upper chain
    while (k >= lower && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0)
      --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  if (hull.size() < 3) {
    return Status::InvalidArgument("all points are collinear");
  }
  return ConvexPolygon(std::move(hull));
}

ConvexPolygon ConvexPolygon::FromRect(const Rect& r) {
  return ConvexPolygon({Point(r.xmin, r.ymin), Point(r.xmax, r.ymin),
                        Point(r.xmax, r.ymax), Point(r.xmin, r.ymax)});
}

double ConvexPolygon::Area() const {
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return 0.5 * std::abs(twice);
}

Rect ConvexPolygon::BoundingBox() const {
  Rect box = Rect::Empty();
  for (const Point& p : vertices_) box = box.Union(Rect::AtPoint(p));
  return box;
}

bool ConvexPolygon::Contains(const Point& p) const {
  const size_t n = vertices_.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    if (Cross(vertices_[i], vertices_[(i + 1) % n], p) < -1e-12) return false;
  }
  return true;
}

ConvexPolygon ConvexPolygon::ClippedTo(const Rect& r) const {
  if (r.IsEmpty()) return ConvexPolygon();
  // Sutherland–Hodgman against the four half-planes of the rectangle.
  // inside(p) and intersect(p, q) are parameterized per side.
  std::vector<Point> poly = vertices_;
  auto clip_edge = [&poly](auto inside, auto intersect) {
    std::vector<Point> out;
    const size_t n = poly.size();
    for (size_t i = 0; i < n; ++i) {
      const Point& cur = poly[i];
      const Point& next = poly[(i + 1) % n];
      const bool cur_in = inside(cur);
      const bool next_in = inside(next);
      if (cur_in) out.push_back(cur);
      if (cur_in != next_in) out.push_back(intersect(cur, next));
    }
    poly = std::move(out);
  };

  auto lerp_x = [](const Point& a, const Point& b, double x) {
    const double t = (x - a.x) / (b.x - a.x);
    return Point(x, a.y + t * (b.y - a.y));
  };
  auto lerp_y = [](const Point& a, const Point& b, double y) {
    const double t = (y - a.y) / (b.y - a.y);
    return Point(a.x + t * (b.x - a.x), y);
  };

  clip_edge([&r](const Point& p) { return p.x >= r.xmin; },
            [&](const Point& a, const Point& b) { return lerp_x(a, b, r.xmin); });
  if (poly.empty()) return ConvexPolygon();
  clip_edge([&r](const Point& p) { return p.x <= r.xmax; },
            [&](const Point& a, const Point& b) { return lerp_x(a, b, r.xmax); });
  if (poly.empty()) return ConvexPolygon();
  clip_edge([&r](const Point& p) { return p.y >= r.ymin; },
            [&](const Point& a, const Point& b) { return lerp_y(a, b, r.ymin); });
  if (poly.empty()) return ConvexPolygon();
  clip_edge([&r](const Point& p) { return p.y <= r.ymax; },
            [&](const Point& a, const Point& b) { return lerp_y(a, b, r.ymax); });

  return ConvexPolygon(Canonicalize(std::move(poly)));
}

double ConvexPolygon::IntersectionArea(const Rect& r) const {
  return ClippedTo(r).Area();
}

ConvexPolygon ConvexPolygon::ClippedToHalfPlane(double nx, double ny,
                                                double c) const {
  std::vector<Point> out;
  const size_t n = vertices_.size();
  auto value = [&](const Point& p) { return nx * p.x + ny * p.y - c; };
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = vertices_[i];
    const Point& next = vertices_[(i + 1) % n];
    const double vc = value(cur);
    const double vn = value(next);
    if (vc <= 0.0) out.push_back(cur);
    if ((vc < 0.0 && vn > 0.0) || (vc > 0.0 && vn < 0.0)) {
      const double t = vc / (vc - vn);
      out.emplace_back(cur.x + t * (next.x - cur.x),
                       cur.y + t * (next.y - cur.y));
    }
  }
  return ConvexPolygon(Canonicalize(std::move(out)));
}

ConvexPolygon ConvexPolygon::Translated(const Point& d) const {
  std::vector<Point> v = vertices_;
  for (Point& p : v) p = p + d;
  return ConvexPolygon(std::move(v));
}

}  // namespace ilq
