// Circles with exact circle–rectangle overlap areas.
//
// The paper's §7 lists non-rectangular uncertainty regions as future work;
// ILQ implements circular regions as an extension. The key primitive is the
// exact area of intersection between a disk and an axis-parallel rectangle,
// which makes uniform-over-disk pdfs evaluable in closed form (mass in a
// rectangle = overlap area / disk area).

#ifndef ILQ_GEOMETRY_CIRCLE_H_
#define ILQ_GEOMETRY_CIRCLE_H_

#include "geometry/point.h"
#include "geometry/rect.h"

namespace ilq {

/// \brief A closed disk with centre and radius.
struct Circle {
  Point center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(const Point& c, double r) : center(c), radius(r) {}

  /// Tight axis-parallel bounding box.
  constexpr Rect BoundingBox() const {
    return Rect(center.x - radius, center.x + radius, center.y - radius,
                center.y + radius);
  }

  constexpr double Area() const {
    return 3.14159265358979323846 * radius * radius;
  }

  /// Closed-disk membership.
  bool Contains(const Point& p) const {
    return center.SquaredDistanceTo(p) <= radius * radius;
  }

  /// True when the disk and rectangle share at least one point.
  bool Intersects(const Rect& r) const {
    if (r.IsEmpty() || radius < 0.0) return false;
    return r.MinDistanceTo(center) <= radius;
  }

  /// True when the whole rectangle lies inside the disk.
  bool ContainsRect(const Rect& r) const;

  /// Exact area of (disk ∩ rectangle); 0 when disjoint.
  double IntersectionArea(const Rect& r) const;
};

}  // namespace ilq

#endif  // ILQ_GEOMETRY_CIRCLE_H_
