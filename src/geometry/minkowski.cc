#include "geometry/minkowski.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace ilq {

ConvexPolygon MinkowskiSum(const ConvexPolygon& a, const ConvexPolygon& b) {
  ILQ_CHECK(a.size() >= 3 && b.size() >= 3,
            "Minkowski sum requires proper polygons");
  const std::vector<Point>& va = a.vertices();
  const std::vector<Point>& vb = b.vertices();
  const size_t n = va.size();
  const size_t m = vb.size();

  // Rotate both chains to start at the lexicographically lowest vertex
  // (lowest y, then lowest x) so the edge directions merge monotonically.
  auto lowest = [](const std::vector<Point>& v) {
    size_t best = 0;
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i].y < v[best].y || (v[i].y == v[best].y && v[i].x < v[best].x)) {
        best = i;
      }
    }
    return best;
  };
  const size_t sa = lowest(va);
  const size_t sb = lowest(vb);

  std::vector<Point> sum;
  sum.reserve(n + m);
  size_t i = 0;
  size_t j = 0;
  while (i < n || j < m) {
    const Point& pa = va[(sa + i) % n];
    const Point& pb = vb[(sb + j) % m];
    sum.push_back(pa + pb);
    if (i >= n) {
      ++j;
      continue;
    }
    if (j >= m) {
      ++i;
      continue;
    }
    const Point ea = va[(sa + i + 1) % n] - pa;
    const Point eb = vb[(sb + j + 1) % m] - pb;
    const double cross = ea.x * eb.y - ea.y * eb.x;
    if (cross > 0.0) {
      ++i;
    } else if (cross < 0.0) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  // The merged chain is convex by construction; the hull call only removes
  // collinear vertices and guards against degenerate numeric cases.
  Result<ConvexPolygon> hull = ConvexPolygon::ConvexHull(std::move(sum));
  ILQ_CHECK(hull.ok(), "Minkowski sum produced a degenerate polygon: "
                           << hull.status().ToString());
  return std::move(hull).ValueOrDie();
}

bool RoundedRect::Intersects(const Rect& r) const {
  if (r.IsEmpty()) return false;
  // Distance between two axis-parallel rectangles, compared to the radius.
  const double dx =
      std::max({0.0, core.xmin - r.xmax, r.xmin - core.xmax});
  const double dy =
      std::max({0.0, core.ymin - r.ymax, r.ymin - core.ymax});
  return dx * dx + dy * dy <= radius * radius;
}

double RoundedRect::IntersectionArea(const Rect& r) const {
  if (r.IsEmpty()) return 0.0;
  if (radius <= 0.0) return core.IntersectionArea(r);
  // Decompose the rounded rectangle into the horizontal slab, the vertical
  // slab (their intersection is the core, handled by inclusion–exclusion)
  // and four disjoint quarter-disk corners.
  const Rect hslab = core.Expanded(radius, 0.0);
  const Rect vslab = core.Expanded(0.0, radius);
  double area = hslab.IntersectionArea(r) + vslab.IntersectionArea(r) -
                core.IntersectionArea(r);

  const Point corners[4] = {
      Point(core.xmin, core.ymin), Point(core.xmax, core.ymin),
      Point(core.xmax, core.ymax), Point(core.xmin, core.ymax)};
  // Outward quadrant of each corner, clipped to the disk's reach.
  const Rect quadrants[4] = {
      Rect(core.xmin - radius, core.xmin, core.ymin - radius, core.ymin),
      Rect(core.xmax, core.xmax + radius, core.ymin - radius, core.ymin),
      Rect(core.xmax, core.xmax + radius, core.ymax, core.ymax + radius),
      Rect(core.xmin - radius, core.xmin, core.ymax, core.ymax + radius)};
  for (int k = 0; k < 4; ++k) {
    const Rect clipped = r.Intersection(quadrants[k]);
    if (!clipped.IsEmpty()) {
      area += Circle(corners[k], radius).IntersectionArea(clipped);
    }
  }
  return area;
}

double RoundedRect::Area() const {
  const double kPi = 3.14159265358979323846;
  return core.Area() + 2.0 * radius * (core.Width() + core.Height()) +
         kPi * radius * radius;
}

RoundedRect ExpandedQueryRangeCircular(const Circle& u0, double w, double h) {
  return RoundedRect{Rect::Centered(u0.center, w, h), u0.radius};
}

}  // namespace ilq
