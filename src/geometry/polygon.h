// Convex polygons: hulls, areas, clipping and membership.
//
// Footnote 1 of the paper notes that for m- and n-sided convex polygons the
// Minkowski sum is a convex polygon with at most m + n edges computable in
// linear time. ILQ implements that general path (see minkowski.h) as well as
// polygon clipping, which gives exact overlap areas for polygonal
// uncertainty regions — another §7 future-work item.

#ifndef ILQ_GEOMETRY_POLYGON_H_
#define ILQ_GEOMETRY_POLYGON_H_

#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace ilq {

/// \brief A convex polygon stored as counter-clockwise vertices.
///
/// Construct via MakeConvex (validates convexity/orientation) or ConvexHull.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;

  /// Builds a polygon from CCW vertices. Fails with InvalidArgument when
  /// fewer than 3 vertices are given or the chain is not convex and CCW
  /// (collinear runs are tolerated and collapsed).
  static Result<ConvexPolygon> MakeConvex(std::vector<Point> vertices);

  /// Convex hull (Andrew monotone chain) of an arbitrary point set; fails
  /// when all points are collinear.
  static Result<ConvexPolygon> ConvexHull(std::vector<Point> points);

  /// Axis-parallel rectangle as a 4-vertex polygon; \p r must be non-empty.
  static ConvexPolygon FromRect(const Rect& r);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }

  /// Shoelace area (non-negative for CCW polygons).
  double Area() const;

  /// Tight bounding box.
  Rect BoundingBox() const;

  /// Closed-set membership.
  bool Contains(const Point& p) const;

  /// Clips this polygon to the rectangle (Sutherland–Hodgman); the result
  /// may be empty (size() == 0).
  ConvexPolygon ClippedTo(const Rect& r) const;

  /// Clips this polygon to the half-plane {p : nx·p.x + ny·p.y ≤ c}.
  /// Used for perpendicular-bisector (Voronoi-cell) constructions in the
  /// exact imprecise-nearest-neighbour evaluator.
  ConvexPolygon ClippedToHalfPlane(double nx, double ny, double c) const;

  /// Area of overlap with a rectangle, via clipping.
  double IntersectionArea(const Rect& r) const;

  /// Polygon translated by vector \p d.
  ConvexPolygon Translated(const Point& d) const;

 private:
  explicit ConvexPolygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  std::vector<Point> vertices_;  // CCW order, no duplicate closing vertex
};

}  // namespace ilq

#endif  // ILQ_GEOMETRY_POLYGON_H_
