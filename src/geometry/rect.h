// Axis-parallel rectangles: the uncertainty regions, query ranges and index
// bounding boxes of the paper are all of this type (§3.1 assumes axis-
// parallel rectangular uncertainty regions; the range query R(x,y) is an
// axis-parallel rectangle with half-width w and half-height h).

#ifndef ILQ_GEOMETRY_RECT_H_
#define ILQ_GEOMETRY_RECT_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/point.h"

namespace ilq {

/// \brief A closed axis-parallel rectangle [xmin, xmax] × [ymin, ymax].
///
/// The empty rectangle is represented with inverted bounds (xmin > xmax) and
/// is produced by Rect::Empty() and by intersections of disjoint rectangles.
/// All predicates treat rectangles as closed sets: touching boundaries count
/// as intersecting, matching Lemma 1's "overlaps" semantics.
struct Rect {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  constexpr Rect() = default;
  constexpr Rect(double x0, double x1, double y0, double y1)
      : xmin(x0), xmax(x1), ymin(y0), ymax(y1) {}

  /// The canonical empty rectangle (identity for ExpandedToInclude).
  static constexpr Rect Empty() { return Rect(); }

  /// Rectangle centred at \p c with half-width \p hw and half-height \p hh —
  /// the paper's R(x, y) query-range constructor.
  static constexpr Rect Centered(const Point& c, double hw, double hh) {
    return Rect(c.x - hw, c.x + hw, c.y - hh, c.y + hh);
  }

  /// Degenerate rectangle covering a single point.
  static constexpr Rect AtPoint(const Point& p) {
    return Rect(p.x, p.x, p.y, p.y);
  }

  /// True when the rectangle contains no points (inverted bounds).
  constexpr bool IsEmpty() const { return xmin > xmax || ymin > ymax; }

  constexpr double Width() const { return IsEmpty() ? 0.0 : xmax - xmin; }
  constexpr double Height() const { return IsEmpty() ? 0.0 : ymax - ymin; }
  constexpr double Area() const { return Width() * Height(); }

  constexpr Point Center() const {
    return Point((xmin + xmax) * 0.5, (ymin + ymax) * 0.5);
  }

  /// Closed-set point membership.
  constexpr bool Contains(const Point& p) const {
    return !IsEmpty() && p.x >= xmin && p.x <= xmax && p.y >= ymin &&
           p.y <= ymax;
  }

  /// True when \p o lies entirely inside this rectangle (empty is contained
  /// in everything).
  constexpr bool ContainsRect(const Rect& o) const {
    if (o.IsEmpty()) return true;
    if (IsEmpty()) return false;
    return o.xmin >= xmin && o.xmax <= xmax && o.ymin >= ymin &&
           o.ymax <= ymax;
  }

  /// Closed-set intersection test (shared boundary counts).
  constexpr bool Intersects(const Rect& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax &&
           o.ymin <= ymax;
  }

  /// Intersection rectangle; empty when disjoint.
  constexpr Rect Intersection(const Rect& o) const {
    return Rect(std::max(xmin, o.xmin), std::min(xmax, o.xmax),
                std::max(ymin, o.ymin), std::min(ymax, o.ymax));
  }

  /// Area of overlap with \p o — the quantity in Eq. 6 of the paper.
  constexpr double IntersectionArea(const Rect& o) const {
    const double w = std::min(xmax, o.xmax) - std::max(xmin, o.xmin);
    const double h = std::min(ymax, o.ymax) - std::max(ymin, o.ymin);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }

  /// Smallest rectangle containing both this and \p o.
  constexpr Rect Union(const Rect& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return Rect(std::min(xmin, o.xmin), std::max(xmax, o.xmax),
                std::min(ymin, o.ymin), std::max(ymax, o.ymax));
  }

  /// Grows (or with negative deltas shrinks) each side. Shrinking past the
  /// centre produces an empty rectangle.
  constexpr Rect Expanded(double dx, double dy) const {
    return Rect(xmin - dx, xmax + dx, ymin - dy, ymax + dy);
  }

  /// Minimum distance from \p p to this rectangle (0 when inside).
  double MinDistanceTo(const Point& p) const {
    const double dx = std::max({xmin - p.x, 0.0, p.x - xmax});
    const double dy = std::max({ymin - p.y, 0.0, p.y - ymax});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Sum of side half-lengths — the classic R-tree "margin" metric used by
  /// the R* split heuristic.
  constexpr double Margin() const { return Width() + Height(); }

  constexpr bool operator==(const Rect& o) const {
    return xmin == o.xmin && xmax == o.xmax && ymin == o.ymin &&
           ymax == o.ymax;
  }

  /// "[xmin,xmax]x[ymin,ymax]" rendering for logs and test failures.
  std::string ToString() const;
};

}  // namespace ilq

#endif  // ILQ_GEOMETRY_RECT_H_
