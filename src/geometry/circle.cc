#include "geometry/circle.h"

#include <algorithm>
#include <cmath>

namespace ilq {

namespace {

// Antiderivative of sqrt(1 - x^2) on [-1, 1].
double SemicircleIntegral(double t) {
  t = std::clamp(t, -1.0, 1.0);
  return 0.5 * (t * std::sqrt(std::max(0.0, 1.0 - t * t)) + std::asin(t));
}

// Area of {(x, y) : x <= X, y <= Y} within the unit disk at the origin.
//
// Derivation: slice vertically. At abscissa x the disk spans
// [-s(x), s(x)] with s(x) = sqrt(1 - x^2); the constraint y <= Y clips the
// slice to height min(Y, s) + s when Y > -s and 0 otherwise. The line y = Y
// meets the circle at |x| = c = sqrt(1 - Y^2), so the integrand is piecewise
// in x with breakpoints at ±c and integrates in closed form via
// SemicircleIntegral.
double UnitDiskCornerArea(double x_limit, double y_limit) {
  if (x_limit <= -1.0 || y_limit <= -1.0) return 0.0;
  const double kPi = 3.14159265358979323846;
  if (y_limit >= 1.0) {
    // Just the x <= X cut of the full disk.
    if (x_limit >= 1.0) return kPi;
    return 2.0 * (SemicircleIntegral(x_limit) - SemicircleIntegral(-1.0));
  }
  const double x = std::min(x_limit, 1.0);
  const double c = std::sqrt(std::max(0.0, 1.0 - y_limit * y_limit));

  // Integral of (Y + s(x)) over [a, b]: the chord region under y = Y.
  auto chord_part = [&](double a, double b) {
    if (b <= a) return 0.0;
    return y_limit * (b - a) + SemicircleIntegral(b) - SemicircleIntegral(a);
  };
  // Integral of 2 s(x) over [a, b]: full vertical slices.
  auto full_part = [](double a, double b) {
    if (b <= a) return 0.0;
    return 2.0 * (SemicircleIntegral(b) - SemicircleIntegral(a));
  };

  if (y_limit >= 0.0) {
    // Slices are full for |x| >= c and chord-clipped for |x| < c.
    double area = full_part(-1.0, std::min(x, -c));
    area += chord_part(std::clamp(-c, -1.0, x), std::clamp(c, -c, x));
    area += full_part(std::max(c, -1.0), x);
    return area;
  }
  // y_limit < 0: only |x| < c contributes, as chord slices.
  return chord_part(std::max(-c, -1.0), std::min(x, c));
}

}  // namespace

bool Circle::ContainsRect(const Rect& r) const {
  if (r.IsEmpty()) return true;
  const double r2 = radius * radius;
  const Point corners[4] = {Point(r.xmin, r.ymin), Point(r.xmin, r.ymax),
                            Point(r.xmax, r.ymin), Point(r.xmax, r.ymax)};
  for (const Point& c : corners) {
    if (center.SquaredDistanceTo(c) > r2) return false;
  }
  return true;
}

double Circle::IntersectionArea(const Rect& r) const {
  if (r.IsEmpty() || radius <= 0.0) return 0.0;
  // Exact zero for disjoint shapes: the inclusion–exclusion below can
  // otherwise leave ~1e-17 cancellation noise, which breaks the
  // "probability is zero outside the Minkowski sum" invariant (Lemma 1).
  if (!Intersects(r)) return 0.0;
  // Normalize to the unit disk at the origin, then apply the standard
  // inclusion–exclusion over the four rectangle corners.
  const double inv = 1.0 / radius;
  const double ax = (r.xmin - center.x) * inv;
  const double bx = (r.xmax - center.x) * inv;
  const double ay = (r.ymin - center.y) * inv;
  const double by = (r.ymax - center.y) * inv;
  const double unit_area =
      UnitDiskCornerArea(bx, by) - UnitDiskCornerArea(ax, by) -
      UnitDiskCornerArea(bx, ay) + UnitDiskCornerArea(ax, ay);
  return std::max(0.0, unit_area) * radius * radius;
}

}  // namespace ilq
