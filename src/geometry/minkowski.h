// Minkowski sums — the paper's query-expansion primitive (§4.1, Lemma 1).
//
// The paper's core case is rectangle ⊕ rectangle: the expanded query
// R ⊕ U0 is U0 grown by the query half-extents (w, h), computed in O(1).
// Footnote 1's general convex ⊕ convex case and the circular-region
// extension (rounded rectangles) are also provided.

#ifndef ILQ_GEOMETRY_MINKOWSKI_H_
#define ILQ_GEOMETRY_MINKOWSKI_H_

#include "geometry/circle.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace ilq {

/// The paper's expanded query range R ⊕ U0 for a rectangular issuer region
/// \p u0 and a query rectangle of half-width \p w and half-height \p h
/// (Figure 2): u0 grown by w on the left/right and h on the top/bottom.
constexpr Rect ExpandedQueryRange(const Rect& u0, double w, double h) {
  return u0.Expanded(w, h);
}

/// Minkowski sum of two convex polygons via the rotating edge-vector merge;
/// the result has at most size(a) + size(b) vertices and is computed in
/// linear time (paper footnote 1).
ConvexPolygon MinkowskiSum(const ConvexPolygon& a, const ConvexPolygon& b);

/// \brief A rectangle with circularly rounded corners: the Minkowski sum of
/// a rectangle and a disk.
///
/// Used by the circular-issuer extension: with a disk-shaped U0 the expanded
/// query R ⊕ U0 is the query rectangle grown by the disk radius with rounded
/// corners.
struct RoundedRect {
  Rect core;       ///< the rectangle before rounding
  double radius;   ///< corner rounding radius (>= 0)

  /// Tight bounding box (core expanded by radius on every side).
  constexpr Rect BoundingBox() const {
    return core.Expanded(radius, radius);
  }

  /// Closed-set membership.
  bool Contains(const Point& p) const {
    return core.MinDistanceTo(p) <= radius;
  }

  /// True when the rounded rectangle and \p r share at least one point.
  bool Intersects(const Rect& r) const;

  /// Exact area of overlap with rectangle \p r.
  double IntersectionArea(const Rect& r) const;

  /// Total area: core + side slabs + corner disk.
  double Area() const;
};

/// Expanded query range for a disk-shaped issuer region: the Minkowski sum
/// of the query rectangle (half-extents w, h, centred on u0's centre) and
/// the disk u0 re-centred at the origin.
RoundedRect ExpandedQueryRangeCircular(const Circle& u0, double w, double h);

}  // namespace ilq

#endif  // ILQ_GEOMETRY_MINKOWSKI_H_
