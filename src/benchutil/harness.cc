#include "benchutil/harness.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/stopwatch.h"

namespace ilq {

CellResult RunCell(
    const std::vector<UncertainObject>& issuers,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query) {
  SummaryStats time_ms;
  SummaryStats candidates;
  SummaryStats node_accesses;
  SummaryStats answers;
  for (const UncertainObject& issuer : issuers) {
    IndexStats stats;
    Stopwatch watch;
    const size_t answer_count = run_query(issuer, &stats);
    time_ms.Add(watch.ElapsedMillis());
    candidates.Add(static_cast<double>(stats.candidates));
    node_accesses.Add(static_cast<double>(stats.node_accesses));
    answers.Add(static_cast<double>(answer_count));
  }
  CellResult cell;
  cell.mean_ms = time_ms.Mean();
  cell.p95_ms = time_ms.Percentile(95.0);
  cell.mean_candidates = candidates.Mean();
  cell.mean_node_accesses = node_accesses.Mean();
  cell.mean_answers = answers.Mean();
  cell.queries = issuers.size();
  return cell;
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> methods)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      methods_(std::move(methods)) {}

void SeriesTable::AddRow(double x, const std::vector<CellResult>& cells) {
  rows_.push_back({x, cells});
}

void SeriesTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  // Response-time table, one column per method (the paper's series).
  std::printf("%-12s", x_label_.c_str());
  for (const std::string& m : methods_) {
    std::printf("  %18s", (m + " T(ms)").c_str());
  }
  std::printf("\n");
  for (const Row& row : rows_) {
    std::printf("%-12g", row.x);
    for (const CellResult& cell : row.cells) {
      std::printf("  %18.3f", cell.mean_ms);
    }
    std::printf("\n");
  }
  // Machine-independent companion: candidates and simulated I/O.
  std::printf("--- candidates / node accesses / answers (means) ---\n");
  std::printf("%-12s", x_label_.c_str());
  for (const std::string& m : methods_) {
    std::printf("  %26s", (m + " cand/IO/ans").c_str());
  }
  std::printf("\n");
  for (const Row& row : rows_) {
    std::printf("%-12g", row.x);
    for (const CellResult& cell : row.cells) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f",
                    cell.mean_candidates, cell.mean_node_accesses,
                    cell.mean_answers);
      std::printf("  %26s", buf);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

Status SeriesTable::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << x_label_
      << ",method,mean_ms,p95_ms,candidates,node_accesses,answers\n";
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      const CellResult& c = row.cells[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%g,%s,%.4f,%.4f,%.2f,%.2f,%.2f\n",
                    row.x, methods_[i].c_str(), c.mean_ms, c.p95_ms,
                    c.mean_candidates, c.mean_node_accesses,
                    c.mean_answers);
      out << buf;
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

size_t BenchQueriesPerPoint(size_t fallback) {
  const char* env = std::getenv("ILQ_BENCH_QUERIES");
  if (env == nullptr) return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

double BenchDatasetScale() {
  const char* env = std::getenv("ILQ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double parsed = std::strtod(env, nullptr);
  return (parsed > 0.0 && parsed <= 1.0) ? parsed : 1.0;
}

}  // namespace ilq
