#include "benchutil/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "simd/simd_policy.h"

namespace ilq {

namespace {

// Shared per-query aggregation: every cell flavour folds (time, stats,
// answer count) tuples through this one accumulator.
class CellAccumulator {
 public:
  void Add(double ms, const IndexStats& stats, size_t answer_count) {
    time_ms_.Add(ms);
    candidates_.Add(static_cast<double>(stats.candidates));
    node_accesses_.Add(static_cast<double>(stats.node_accesses));
    answers_.Add(static_cast<double>(answer_count));
  }

  CellResult Finish(size_t queries, double wall_ms, size_t threads) const {
    CellResult cell;
    cell.mean_ms = time_ms_.Mean();
    cell.p95_ms = time_ms_.Percentile(95.0);
    cell.mean_candidates = candidates_.Mean();
    cell.mean_node_accesses = node_accesses_.Mean();
    cell.mean_answers = answers_.Mean();
    cell.queries = queries;
    cell.wall_ms = wall_ms;
    cell.threads = threads;
    return cell;
  }

 private:
  SummaryStats time_ms_;
  SummaryStats candidates_;
  SummaryStats node_accesses_;
  SummaryStats answers_;
};

}  // namespace

CellResult RunCell(
    const std::vector<UncertainObject>& issuers,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query) {
  return RunCellParallel(issuers, /*threads=*/1, run_query);
}

CellResult RunCellParallel(
    const std::vector<UncertainObject>& issuers, size_t threads,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query) {
  const size_t n = issuers.size();
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, n == 0 ? 1 : n));
  std::vector<double> times(n);
  std::vector<IndexStats> stats(n);
  std::vector<size_t> answer_counts(n);
  Stopwatch wall;
  ParallelFor(threads, n, [&](size_t i, size_t) {
    Stopwatch watch;
    answer_counts[i] = run_query(issuers[i], &stats[i]);
    times[i] = watch.ElapsedMillis();
  });
  const double wall_ms = wall.ElapsedMillis();

  CellAccumulator acc;
  for (size_t i = 0; i < n; ++i) {
    acc.Add(times[i], stats[i], answer_counts[i]);
  }
  return acc.Finish(n, wall_ms, threads);
}

CellResult SummarizeBatch(const BatchResult& batch) {
  CellAccumulator acc;
  for (size_t i = 0; i < batch.answers.size(); ++i) {
    acc.Add(i < batch.query_ms.size() ? batch.query_ms[i] : 0.0,
            batch.per_query_stats[i], batch.answers[i].size());
  }
  return acc.Finish(batch.answers.size(), batch.wall_ms,
                    batch.threads_used);
}

CellResult RunBatchCell(const QueryEngine& engine, QueryMethod method,
                        const std::vector<UncertainObject>& issuers,
                        const BatchSpec& spec, const BatchOptions& options) {
  return SummarizeBatch(engine.RunBatch(method, issuers, spec, options));
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> methods)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      methods_(std::move(methods)) {}

void SeriesTable::AddRow(double x, const std::vector<CellResult>& cells) {
  rows_.push_back({x, cells});
}

void SeriesTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  // Response-time table, one column per method (the paper's series).
  std::printf("%-12s", x_label_.c_str());
  for (const std::string& m : methods_) {
    std::printf("  %18s", (m + " T(ms)").c_str());
  }
  std::printf("\n");
  for (const Row& row : rows_) {
    std::printf("%-12g", row.x);
    for (const CellResult& cell : row.cells) {
      std::printf("  %18.3f", cell.mean_ms);
    }
    std::printf("\n");
  }
  // Wall-clock companion (only meaningful for batch-evaluated cells).
  bool any_wall = false;
  for (const Row& row : rows_) {
    for (const CellResult& cell : row.cells) {
      if (cell.wall_ms > 0.0) any_wall = true;
    }
  }
  if (any_wall) {
    size_t threads = 1;
    for (const Row& row : rows_) {
      for (const CellResult& cell : row.cells) {
        threads = std::max(threads, cell.threads);
      }
    }
    std::printf("--- batch wall-clock per cell, ms (threads=%zu) ---\n",
                threads);
    std::printf("%-12s", x_label_.c_str());
    for (const std::string& m : methods_) {
      std::printf("  %18s", (m + " wall").c_str());
    }
    std::printf("\n");
    for (const Row& row : rows_) {
      std::printf("%-12g", row.x);
      for (const CellResult& cell : row.cells) {
        std::printf("  %18.1f", cell.wall_ms);
      }
      std::printf("\n");
    }
  }
  // Machine-independent companion: candidates and simulated I/O.
  std::printf("--- candidates / node accesses / answers (means) ---\n");
  std::printf("%-12s", x_label_.c_str());
  for (const std::string& m : methods_) {
    std::printf("  %26s", (m + " cand/IO/ans").c_str());
  }
  std::printf("\n");
  for (const Row& row : rows_) {
    std::printf("%-12g", row.x);
    for (const CellResult& cell : row.cells) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f",
                    cell.mean_candidates, cell.mean_node_accesses,
                    cell.mean_answers);
      std::printf("  %26s", buf);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

Status SeriesTable::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << x_label_
      << ",method,mean_ms,p95_ms,candidates,node_accesses,answers,"
         "wall_ms,threads\n";
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      const CellResult& c = row.cells[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%g,%s,%.4f,%.4f,%.2f,%.2f,%.2f,%.2f,%zu\n", row.x,
                    methods_[i].c_str(), c.mean_ms, c.p95_ms,
                    c.mean_candidates, c.mean_node_accesses, c.mean_answers,
                    c.wall_ms, c.threads);
      out << buf;
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string MicroBenchJsonPath() {
  const char* env = std::getenv("ILQ_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_micro.json";
}

std::string BenchCsvPath(const std::string& filename) {
  const char* env = std::getenv("ILQ_BENCH_OUT_DIR");
  const std::filesystem::path dir =
      (env != nullptr && *env != '\0') ? env : "bench/out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create %s (%s); writing %s to cwd\n",
                 dir.string().c_str(), ec.message().c_str(),
                 filename.c_str());
    return filename;
  }
  return (dir / filename).string();
}

namespace {

// JSON string escaping: quotes, backslashes, and control characters
// (benchmark names are normally plain ASCII, but a custom label could
// carry anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Fixed-width numeric rendering; the buffer comfortably fits any double.
std::string JsonNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

// The widest ISA this *binary* was compiled to assume everywhere (the
// baseline -march, not the per-TU kernel flags in src/simd — those always
// compile and dispatch at runtime).
const char* CompileIsa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace

Status WriteMicroBenchJson(const std::string& path,
                           const std::vector<MicroBenchResult>& results) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  // CPU/ISA provenance: numbers measured on an AVX-512 box are not
  // comparable to an SSE2 box, so the regression checker warns when these
  // fields differ between baseline and current run.
  out << "{\n  \"context\": {\n"
      << "    \"library\": \"ilq\",\n"
      << "    \"time_unit\": \"ns\",\n"
      << "    \"compiler\": \"" << JsonEscape(__VERSION__) << "\",\n"
      << "    \"compile_isa\": \"" << CompileIsa() << "\",\n"
      << "    \"fp_contract\": \""
#if defined(ILQ_FP_CONTRACT_OFF)
      << "off"
#else
      << "unknown"
#endif
      << "\",\n"
      << "    \"detected_simd\": \""
      << simd::SimdLevelName(simd::DetectedSimdLevel()) << "\",\n"
      << "    \"simd_level\": \""
      << simd::SimdLevelName(simd::ActiveSimdLevel()) << "\",\n"
      << "    \"kernel_variant\": \""
      << simd::KernelVariantName(simd::ActiveKernelVariant()) << "\"\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const MicroBenchResult& r = results[i];
    out << "    {\"name\": \"" << JsonEscape(r.name)
        << "\", \"real_time_ns\": " << JsonNumber(r.real_time_ns)
        << ", \"cpu_time_ns\": " << JsonNumber(r.cpu_time_ns)
        << ", \"iterations\": "
        << static_cast<long long>(r.iterations) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

size_t BenchQueriesPerPoint(size_t fallback) {
  const char* env = std::getenv("ILQ_BENCH_QUERIES");
  if (env == nullptr) return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

double BenchDatasetScale() {
  const char* env = std::getenv("ILQ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || !std::isfinite(parsed) ||
      parsed <= 0.0) {
    std::fprintf(stderr,
                 "ILQ_BENCH_SCALE=%s is not a positive number; using 1.0\n",
                 env);
    return 1.0;
  }
  return parsed;
}

size_t BenchThreads(int argc, char** argv, size_t fallback) {
  // "--threads=N" / "--threads N" / "-t N". "0" is valid and means "all
  // hardware threads" (resolved by BatchOptions).
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    } else if ((std::strcmp(arg, "--threads") == 0 ||
                std::strcmp(arg, "-t") == 0) &&
               i + 1 < argc) {
      value = argv[i + 1];
    }
    if (value != nullptr) {
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end != value && *end == '\0' && parsed >= 0) {
        return static_cast<size_t>(parsed);
      }
      std::fprintf(stderr, "ignoring unparsable thread count %s\n", value);
    }
  }
  const char* env = std::getenv("ILQ_BENCH_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return fallback;
}

}  // namespace ilq
