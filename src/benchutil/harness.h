// Experiment harness: runs one method over a workload, collects per-query
// response times and index counters, and prints paper-style series tables
// (one row per swept parameter value, one column per method).

#ifndef ILQ_BENCHUTIL_HARNESS_H_
#define ILQ_BENCHUTIL_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/batch.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "index/index_stats.h"

namespace ilq {

/// \brief Aggregated measurements for one (method, parameter-value) cell.
struct CellResult {
  double mean_ms = 0.0;       ///< mean response time per query (the paper's T)
  double p95_ms = 0.0;
  double mean_candidates = 0.0;  ///< candidates handed to the kernel
  double mean_node_accesses = 0.0;  ///< simulated I/O
  double mean_answers = 0.0;     ///< answer-set size
  size_t queries = 0;
  double wall_ms = 0.0;  ///< whole-cell wall-clock (batch runs only)
  size_t threads = 1;    ///< threads the cell ran on
};

/// Runs \p run_query (which must evaluate exactly one query for the given
/// issuer and return the answer-set size) over every issuer in the
/// workload, timing each call. Serial; for engine-backed methods prefer
/// RunBatchCell, which adds multi-threading.
CellResult RunCell(
    const std::vector<UncertainObject>& issuers,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query);

/// RunCell with the issuers fanned across \p threads workers (0 = all
/// hardware threads). \p run_query must be safe for concurrent calls —
/// each invocation gets its own IndexStats. Used by benches whose query
/// functions are not QueryEngine methods (e.g. the grid-index ablation);
/// engine methods should go through RunBatchCell.
CellResult RunCellParallel(
    const std::vector<UncertainObject>& issuers, size_t threads,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query);

/// Evaluates one engine method over the issuers through
/// QueryEngine::RunBatch and aggregates the per-query measurements into a
/// CellResult. With options.threads == 1 this measures exactly what
/// RunCell does; with more threads per-query times include scheduling
/// contention while wall_ms captures the batch speedup.
CellResult RunBatchCell(const QueryEngine& engine, QueryMethod method,
                        const std::vector<UncertainObject>& issuers,
                        const BatchSpec& spec,
                        const BatchOptions& options = BatchOptions{});

/// Summarizes an already-computed BatchResult (shared by RunBatchCell and
/// callers that need the raw answers too).
CellResult SummarizeBatch(const BatchResult& batch);

/// \brief Collects rows of a sweep and pretty-prints the table.
class SeriesTable {
 public:
  /// \p x_label names the swept parameter; \p methods are the series names.
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> methods);

  /// Adds one row: the swept value plus one CellResult per method (same
  /// order as the constructor's method list).
  void AddRow(double x, const std::vector<CellResult>& cells);

  /// Prints the response-time table (paper format) followed by a
  /// machine-independent companion table (candidates and node accesses).
  void Print() const;

  /// Writes "x,method,mean_ms,p95_ms,candidates,node_accesses,answers"
  /// CSV rows to the given stream-path (append-less overwrite).
  Status WriteCsv(const std::string& path) const;

 private:
  struct Row {
    double x;
    std::vector<CellResult> cells;
  };
  std::string title_;
  std::string x_label_;
  std::vector<std::string> methods_;
  std::vector<Row> rows_;
};

/// \brief One micro-benchmark measurement, as collected by
/// bench/micro_kernels' reporter and serialized by WriteMicroBenchJson.
struct MicroBenchResult {
  std::string name;        ///< benchmark name, e.g. "BM_IntegrateGL/16"
  double real_time_ns = 0.0;  ///< adjusted wall time per iteration
  double cpu_time_ns = 0.0;   ///< adjusted CPU time per iteration
  double iterations = 0.0;    ///< iterations the measurement averaged over
};

/// Output path for the machine-readable micro-benchmark dump: the
/// ILQ_BENCH_JSON environment variable when set, else "BENCH_micro.json"
/// in the working directory.
std::string MicroBenchJsonPath();

/// Output path for a figure/ablation CSV: \p filename inside the bench
/// output directory — ILQ_BENCH_OUT_DIR when set, else "bench/out" (a
/// gitignored scratch directory) relative to the working directory. The
/// directory is created on demand so WriteCsv never fails on a fresh
/// checkout.
std::string BenchCsvPath(const std::string& filename);

/// Writes the measurements as a JSON document
/// `{"context": {...}, "benchmarks": [{name, real_time_ns, ...}, ...]}` —
/// a subset of the google-benchmark schema, so trend tooling can ingest
/// either. This file is the repo's tracked perf trajectory; see
/// bench/baselines/.
Status WriteMicroBenchJson(const std::string& path,
                           const std::vector<MicroBenchResult>& results);

/// Reads an environment-variable override for query counts so the full
/// paper-scale runs (500 queries/point) can be dialled down in CI:
/// ILQ_BENCH_QUERIES, default \p fallback.
size_t BenchQueriesPerPoint(size_t fallback);

/// Environment-variable override for dataset sizes: ILQ_BENCH_SCALE scales
/// the paper's 62K/53K datasets by any positive factor (default 1.0;
/// values above 1 request larger-than-paper catalogs). Nonsense values
/// (non-numeric, zero, negative, non-finite) warn on stderr and fall back
/// to 1.0 instead of being silently ignored.
double BenchDatasetScale();

/// Worker-thread count for the batch benches: `--threads=N` (or
/// `--threads N`) on the command line wins, then the ILQ_BENCH_THREADS
/// environment variable, then \p fallback. 0 means "all hardware threads"
/// and is passed through for BatchOptions to resolve.
size_t BenchThreads(int argc, char** argv, size_t fallback = 1);

}  // namespace ilq

#endif  // ILQ_BENCHUTIL_HARNESS_H_
