// Experiment harness: runs one method over a workload, collects per-query
// response times and index counters, and prints paper-style series tables
// (one row per swept parameter value, one column per method).

#ifndef ILQ_BENCHUTIL_HARNESS_H_
#define ILQ_BENCHUTIL_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/engine.h"
#include "datagen/workload.h"
#include "index/index_stats.h"

namespace ilq {

/// \brief Aggregated measurements for one (method, parameter-value) cell.
struct CellResult {
  double mean_ms = 0.0;       ///< mean response time per query (the paper's T)
  double p95_ms = 0.0;
  double mean_candidates = 0.0;  ///< candidates handed to the kernel
  double mean_node_accesses = 0.0;  ///< simulated I/O
  double mean_answers = 0.0;     ///< answer-set size
  size_t queries = 0;
};

/// Runs \p run_query (which must evaluate exactly one query for the given
/// issuer and return the answer-set size) over every issuer in the
/// workload, timing each call.
CellResult RunCell(
    const std::vector<UncertainObject>& issuers,
    const std::function<size_t(const UncertainObject&, IndexStats*)>&
        run_query);

/// \brief Collects rows of a sweep and pretty-prints the table.
class SeriesTable {
 public:
  /// \p x_label names the swept parameter; \p methods are the series names.
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> methods);

  /// Adds one row: the swept value plus one CellResult per method (same
  /// order as the constructor's method list).
  void AddRow(double x, const std::vector<CellResult>& cells);

  /// Prints the response-time table (paper format) followed by a
  /// machine-independent companion table (candidates and node accesses).
  void Print() const;

  /// Writes "x,method,mean_ms,p95_ms,candidates,node_accesses,answers"
  /// CSV rows to the given stream-path (append-less overwrite).
  Status WriteCsv(const std::string& path) const;

 private:
  struct Row {
    double x;
    std::vector<CellResult> cells;
  };
  std::string title_;
  std::string x_label_;
  std::vector<std::string> methods_;
  std::vector<Row> rows_;
};

/// Reads an environment-variable override for query counts so the full
/// paper-scale runs (500 queries/point) can be dialled down in CI:
/// ILQ_BENCH_QUERIES, default \p fallback.
size_t BenchQueriesPerPoint(size_t fallback);

/// Environment-variable override for dataset sizes: ILQ_BENCH_SCALE scales
/// the paper's 62K/53K datasets by a fraction (default 1.0).
double BenchDatasetScale();

}  // namespace ilq

#endif  // ILQ_BENCHUTIL_HARNESS_H_
