#include "storage/buffer_manager.h"

#include <algorithm>
#include <utility>

namespace ilq {

BufferManager::BufferManager(std::shared_ptr<const PageFile> file,
                             size_t budget_bytes)
    : file_(std::move(file)),
      capacity_(std::max<size_t>(1, budget_bytes / file_->page_size())) {}

Result<PageHandle> BufferManager::Pin(uint32_t page_id,
                                      BufferCounters* per_call) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(page_id);
  if (it != slots_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (per_call != nullptr) ++per_call->hits;
    return it->second.page;
  }

  auto bytes = std::make_shared<std::vector<uint8_t>>();
  ILQ_RETURN_NOT_OK(file_->ReadPage(page_id, bytes.get()));
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (per_call != nullptr) ++per_call->misses;

  lru_.push_front(page_id);
  slots_.emplace(page_id, Slot{PageHandle(std::move(bytes)), lru_.begin()});
  while (slots_.size() > capacity_) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    slots_.erase(victim);  // in-flight handles keep the bytes alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (per_call != nullptr) ++per_call->evictions;
  }
  return slots_.find(page_id)->second.page;
}

BufferCounters BufferManager::counters() const {
  BufferCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  return c;
}

size_t BufferManager::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace ilq
