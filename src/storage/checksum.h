// CRC32 (IEEE 802.3 polynomial) — the per-page and per-header integrity
// check of the ILQP paged index format (storage/page_file.h). Chosen over
// stronger hashes because a page is verified on every cold read: table-driven
// CRC32 costs ~1 cycle/byte and detects the failure modes that matter here
// (torn writes, truncation, bit rot), while collisions from an adversary are
// out of scope — the validation walk bounds every decoded field regardless.

#ifndef ILQ_STORAGE_CHECKSUM_H_
#define ILQ_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace ilq {

/// CRC32 of `size` bytes at `data`, continuing from `seed` (pass the
/// previous return value to checksum a buffer in pieces; 0 starts fresh).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace ilq

#endif  // ILQ_STORAGE_CHECKSUM_H_
