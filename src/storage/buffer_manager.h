// Pinning LRU page buffer over one PageFile — the classic load_page/
// buffer-pool architecture of disk R-tree implementations (ROADMAP
// out-of-core item).
//
// Pinning is implicit: Pin returns a shared_ptr to the immutable page
// bytes. Eviction merely drops the buffer's own reference — any traversal
// still holding the handle keeps the page alive until it lets go, so an
// evicted-while-in-use page can never be freed under a reader. This makes
// the budget a *target*, not a hard cap: resident_pages() counts what the
// buffer references, and in-flight handles can briefly hold more.
//
// Counters: every Pin is exactly one hit or one miss; each eviction bumps
// evictions. Per-call deltas are also reported through the optional
// BufferCounters out-param so the index layer can fold them into a query's
// IndexStats (hits + misses == that query's paged node reads).
//
// Thread safety: all members are safe for concurrent calls. The mutex is
// held across the disk read on a miss — correct and simple; concurrent
// misses serialize. Sharding the buffer (or per-page read latches) is
// future work if profile data ever shows the lock hot.

#ifndef ILQ_STORAGE_BUFFER_MANAGER_H_
#define ILQ_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace ilq {

/// Immutable pinned page bytes; holding one keeps the page alive across
/// eviction.
using PageHandle = std::shared_ptr<const std::vector<uint8_t>>;

/// Monotone buffer counters (also usable as a per-call delta).
struct BufferCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferManager {
 public:
  /// \p budget_bytes is translated to a page capacity (at least 1 — a
  /// budget below one page still lets queries run, it just thrashes).
  BufferManager(std::shared_ptr<const PageFile> file, size_t budget_bytes);

  /// Returns the page, reading and caching it on a miss. When \p per_call
  /// is non-null the call's own hit/miss/eviction deltas are *added* to it.
  /// Errors (I/O, checksum) are returned, never cached.
  Result<PageHandle> Pin(uint32_t page_id, BufferCounters* per_call = nullptr);

  /// Lifetime totals across all threads.
  BufferCounters counters() const;

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const;
  const PageFile& file() const { return *file_; }

 private:
  struct Slot {
    PageHandle page;
    std::list<uint32_t>::iterator lru_it;
  };

  std::shared_ptr<const PageFile> file_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::list<uint32_t> lru_;  // front = most recently used
  std::unordered_map<uint32_t, Slot> slots_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ilq

#endif  // ILQ_STORAGE_BUFFER_MANAGER_H_
