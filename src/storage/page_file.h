// "ILQP" v1 — the fixed-page on-disk index file (ROADMAP out-of-core item).
//
// File layout (little-endian throughout):
//
//   offset 0:                 64-byte file header (rest of page 0 is zero)
//   offset (p+1)*page_size:   page p, for p in [0, page_count)
//
// Header fields:
//
//   | u32 magic "ILQP" | u16 version | u16 reserved | u32 page_size  |
//   | u32 page_count   | i32 root    | u32 height   | u64 item_count |
//   | u32 max_entries  | u32 min_entries | u32 extra_entry_bytes     |
//   | 8 reserved bytes | u32 crc32 of bytes [0, 60)                  |
//
// Every page is independently checksummed: its first 4 bytes hold the CRC32
// of the remaining page_size - 4 bytes, so a torn write or flipped bit is
// caught on first read, not propagated into a traversal. What the payload
// *means* (R-tree node encoding) is the index layer's business
// (index/node_store.h); this layer only knows pages, checksums and the
// header.
//
// Decoding is total, same contract as the wire codec: wrong magic/version/
// structure -> kInvalidArgument, truncation -> kOutOfRange, filesystem
// failure -> kIOError; never a crash, and every size check is written in
// division form so forged counts cannot overflow an allocation
// (file_size / page_size is compared against page_count + 1 — the
// multiplication that could wrap is never performed on untrusted input).
//
// Thread safety: PageFile is immutable after Open and reads via pread, so
// any number of threads may call ReadPage concurrently.

#ifndef ILQ_STORAGE_PAGE_FILE_H_
#define ILQ_STORAGE_PAGE_FILE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ilq {

/// First four bytes of every paged index file: "ILQP".
inline constexpr uint32_t kPageFileMagic = 0x50514C49;

/// Current paged-index format version.
inline constexpr uint16_t kPageFileVersion = 1;

/// Bytes of the file header (page 0 is padded to page_size with zeros).
inline constexpr size_t kPageFileHeaderBytes = 64;

/// Per-page checksum prefix: CRC32 of the rest of the page.
inline constexpr size_t kPageChecksumBytes = 4;

/// Page-size sanity bounds. The lower bound must fit the file header; the
/// upper bound keeps a forged header from driving giant allocations.
inline constexpr uint32_t kMinPageSize = 64;
inline constexpr uint32_t kMaxPageSize = 16u << 20;

// --- Little-endian field helpers -------------------------------------------
// Shared by the header codec here and the node-page codec in the index
// layer. Byte loops, not memcpy-and-pray: well-defined on any endianness,
// and compilers collapse them to single loads/stores on little-endian
// targets.

inline void StoreLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void StoreLe32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void StoreLe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void StoreLeF64(uint8_t* p, double v) {
  StoreLe64(p, std::bit_cast<uint64_t>(v));
}
inline uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
inline double LoadLeF64(const uint8_t* p) {
  return std::bit_cast<double>(LoadLe64(p));
}

/// \brief Decoded file header. The geometry fields (max/min entries,
/// extra_entry_bytes) let a reader reconstruct the exact RTreeOptions the
/// file was written with, which the engine cross-checks against its config.
struct PageFileHeader {
  uint32_t page_size = 4096;
  uint32_t page_count = 0;
  int32_t root = -1;         ///< root page id, -1 when the tree is empty
  uint32_t height = 0;       ///< tree height (0 iff empty)
  uint64_t item_count = 0;   ///< leaf entries across the whole file
  uint32_t max_entries = 0;  ///< fanout cap the writer enforced
  uint32_t min_entries = 0;
  uint32_t extra_entry_bytes = 0;  ///< PTI catalog charge (0 = plain tree)
};

/// \brief Read-only handle on one ILQP file.
///
/// Open performs the shallow structural validation (magic, version, header
/// checksum, division-form size check, root/height/count bounds); per-page
/// checksums are verified by every ReadPage. The deep tree walk (child ids,
/// depth uniformity, MBR containment) lives in the index layer, which knows
/// the node encoding.
class PageFile {
 public:
  static Result<std::shared_ptr<const PageFile>> Open(const std::string& path);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  const PageFileHeader& header() const { return header_; }
  uint32_t page_size() const { return header_.page_size; }
  uint32_t page_count() const { return header_.page_count; }
  const std::string& path() const { return path_; }

  /// Reads page \p page_id into \p out (resized to page_size) and verifies
  /// its checksum. kInvalidArgument on checksum mismatch or out-of-range
  /// id, kIOError/kOutOfRange on filesystem trouble.
  Status ReadPage(uint32_t page_id, std::vector<uint8_t>* out) const;

 private:
  PageFile(int fd, std::string path, PageFileHeader header)
      : fd_(fd), path_(std::move(path)), header_(header) {}

  int fd_;
  std::string path_;
  PageFileHeader header_;
};

/// \brief Sequential writer: pages in id order, header last.
///
/// Usage: Create, WritePage once per page (the writer stamps each page's
/// checksum into its first 4 bytes), then Finish with the header — which is
/// written only after every page landed, so a crashed writer leaves a file
/// whose header fails validation rather than a silently short index.
class PageFileWriter {
 public:
  static Result<PageFileWriter> Create(const std::string& path,
                                       uint32_t page_size);

  PageFileWriter(PageFileWriter&& o) noexcept;
  PageFileWriter& operator=(PageFileWriter&&) = delete;
  PageFileWriter(const PageFileWriter&) = delete;
  ~PageFileWriter();

  /// Appends one page. \p page must be exactly page_size bytes with the
  /// first kPageChecksumBytes left zero; the stored checksum is computed
  /// here.
  Status WritePage(std::span<const uint8_t> page);

  uint32_t pages_written() const { return pages_written_; }

  /// Writes the header (its page_size/page_count must match what was
  /// written), flushes and closes. No further calls are valid after this.
  Status Finish(const PageFileHeader& header);

 private:
  PageFileWriter(int fd, std::string path, uint32_t page_size)
      : fd_(fd), path_(std::move(path)), page_size_(page_size) {}

  int fd_;
  std::string path_;
  uint32_t page_size_;
  uint32_t pages_written_ = 0;
  std::vector<uint8_t> scratch_;
};

/// Encodes \p header into \p out (at least kPageFileHeaderBytes), including
/// its checksum. Exposed for the writer and for corruption tests that need
/// to forge headers.
void EncodePageFileHeader(const PageFileHeader& header, uint8_t* out);

}  // namespace ilq

#endif  // ILQ_STORAGE_PAGE_FILE_H_
