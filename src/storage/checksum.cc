#include "storage/checksum.h"

#include <array>

namespace ilq {
namespace {

// Reflected-polynomial table (0xEDB88320), built at compile time.
constexpr std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = BuildCrcTable();

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrcTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ilq
