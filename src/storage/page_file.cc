#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "storage/checksum.h"

namespace ilq {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// Full-buffer pread: retries partial reads, fails on EOF-in-the-middle.
Status PreadAll(int fd, uint8_t* buf, size_t size, uint64_t offset,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, buf + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("paged index: read from", path));
    }
    if (n == 0) {
      return Status::OutOfRange("paged index: '" + path +
                                "' truncated mid-page");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PwriteAll(int fd, const uint8_t* buf, size_t size, uint64_t offset,
                 const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd, buf + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("paged index: write to", path));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

void EncodePageFileHeader(const PageFileHeader& header, uint8_t* out) {
  std::memset(out, 0, kPageFileHeaderBytes);
  StoreLe32(out + 0, kPageFileMagic);
  StoreLe16(out + 4, kPageFileVersion);
  // bytes 6..8 reserved
  StoreLe32(out + 8, header.page_size);
  StoreLe32(out + 12, header.page_count);
  StoreLe32(out + 16, static_cast<uint32_t>(header.root));
  StoreLe32(out + 20, header.height);
  StoreLe64(out + 24, header.item_count);
  StoreLe32(out + 32, header.max_entries);
  StoreLe32(out + 36, header.min_entries);
  StoreLe32(out + 40, header.extra_entry_bytes);
  // bytes 44..60 reserved
  StoreLe32(out + 60, Crc32(out, 60));
}

Result<std::shared_ptr<const PageFile>> PageFile::Open(
    const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Status::IOError("paged index: '" + path +
                           "' is not a regular file");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(Errno("paged index: cannot open", path));
  }
  auto file = std::shared_ptr<PageFile>(
      new PageFile(fd, path, PageFileHeader{}));

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return Status::IOError(Errno("paged index: cannot stat", path));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < kPageFileHeaderBytes) {
    return Status::OutOfRange("paged index: '" + path +
                              "' is shorter than the file header");
  }

  uint8_t raw[kPageFileHeaderBytes];
  ILQ_RETURN_NOT_OK(PreadAll(fd, raw, sizeof(raw), 0, path));
  if (LoadLe32(raw + 0) != kPageFileMagic) {
    return Status::InvalidArgument(
        "paged index: bad magic (not an ILQP file)");
  }
  const uint16_t version = LoadLe16(raw + 4);
  if (version != kPageFileVersion) {
    return Status::InvalidArgument(
        "paged index: unsupported format version " + std::to_string(version) +
        " (expected " + std::to_string(kPageFileVersion) + ")");
  }
  if (LoadLe32(raw + 60) != Crc32(raw, 60)) {
    return Status::InvalidArgument("paged index: header checksum mismatch");
  }

  PageFileHeader h;
  h.page_size = LoadLe32(raw + 8);
  h.page_count = LoadLe32(raw + 12);
  h.root = static_cast<int32_t>(LoadLe32(raw + 16));
  h.height = LoadLe32(raw + 20);
  h.item_count = LoadLe64(raw + 24);
  h.max_entries = LoadLe32(raw + 32);
  h.min_entries = LoadLe32(raw + 36);
  h.extra_entry_bytes = LoadLe32(raw + 40);

  if (h.page_size < kMinPageSize || h.page_size > kMaxPageSize) {
    return Status::InvalidArgument(
        "paged index: page size " + std::to_string(h.page_size) +
        " outside [" + std::to_string(kMinPageSize) + ", " +
        std::to_string(kMaxPageSize) + "]");
  }
  // Division form, as in the wire codec: never multiply the untrusted
  // page_count by page_size — divide the trusted file size instead, so a
  // forged count cannot wrap the comparison.
  if (file_size % h.page_size != 0 ||
      file_size / h.page_size != static_cast<uint64_t>(h.page_count) + 1) {
    return Status::OutOfRange(
        "paged index: file size " + std::to_string(file_size) +
        " does not hold a header page plus " + std::to_string(h.page_count) +
        " pages of " + std::to_string(h.page_size) + " bytes");
  }
  if (h.page_count == 0) {
    if (h.root != -1 || h.height != 0 || h.item_count != 0) {
      return Status::InvalidArgument(
          "paged index: empty file with non-empty root/height/items");
    }
  } else {
    if (h.root < 0 || static_cast<uint32_t>(h.root) >= h.page_count) {
      return Status::InvalidArgument("paged index: root page id " +
                                     std::to_string(h.root) +
                                     " out of range");
    }
    if (h.height == 0 || h.height > h.page_count) {
      return Status::InvalidArgument("paged index: implausible height " +
                                     std::to_string(h.height));
    }
    if (h.max_entries < 2 || h.min_entries < 1 ||
        h.min_entries > h.max_entries) {
      return Status::InvalidArgument(
          "paged index: forged fanout bounds (max_entries " +
          std::to_string(h.max_entries) + ", min_entries " +
          std::to_string(h.min_entries) + ")");
    }
    // Both factors are u32, so the u64 product cannot wrap.
    if (h.item_count > static_cast<uint64_t>(h.page_count) * h.max_entries) {
      return Status::InvalidArgument(
          "paged index: item count exceeds total page capacity");
    }
  }

  file->header_ = h;
  return std::shared_ptr<const PageFile>(std::move(file));
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::ReadPage(uint32_t page_id, std::vector<uint8_t>* out) const {
  if (page_id >= header_.page_count) {
    return Status::InvalidArgument("paged index: page id " +
                                   std::to_string(page_id) + " out of range");
  }
  out->resize(header_.page_size);
  const uint64_t offset =
      (static_cast<uint64_t>(page_id) + 1) * header_.page_size;
  ILQ_RETURN_NOT_OK(PreadAll(fd_, out->data(), out->size(), offset, path_));
  const uint32_t stored = LoadLe32(out->data());
  const uint32_t actual = Crc32(out->data() + kPageChecksumBytes,
                                out->size() - kPageChecksumBytes);
  if (stored != actual) {
    return Status::InvalidArgument("paged index: checksum mismatch on page " +
                                   std::to_string(page_id));
  }
  return Status::OK();
}

Result<PageFileWriter> PageFileWriter::Create(const std::string& path,
                                              uint32_t page_size) {
  if (page_size < kMinPageSize || page_size > kMaxPageSize) {
    return Status::InvalidArgument(
        "paged index: writer page size " + std::to_string(page_size) +
        " outside [" + std::to_string(kMinPageSize) + ", " +
        std::to_string(kMaxPageSize) + "]");
  }
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("paged index: cannot create", path));
  }
  PageFileWriter writer(fd, path, page_size);
  // Reserve the header page now; Finish overwrites it once every data page
  // landed.
  writer.scratch_.assign(page_size, 0);
  const Status reserved =
      PwriteAll(fd, writer.scratch_.data(), page_size, 0, path);
  if (!reserved.ok()) return reserved;
  return writer;
}

PageFileWriter::PageFileWriter(PageFileWriter&& o) noexcept
    : fd_(o.fd_),
      path_(std::move(o.path_)),
      page_size_(o.page_size_),
      pages_written_(o.pages_written_),
      scratch_(std::move(o.scratch_)) {
  o.fd_ = -1;
}

PageFileWriter::~PageFileWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFileWriter::WritePage(std::span<const uint8_t> page) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("paged index: writer already finished");
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument(
        "paged index: page must be exactly " + std::to_string(page_size_) +
        " bytes, got " + std::to_string(page.size()));
  }
  scratch_.assign(page.begin(), page.end());
  StoreLe32(scratch_.data(), Crc32(scratch_.data() + kPageChecksumBytes,
                                   scratch_.size() - kPageChecksumBytes));
  const uint64_t offset =
      (static_cast<uint64_t>(pages_written_) + 1) * page_size_;
  ILQ_RETURN_NOT_OK(
      PwriteAll(fd_, scratch_.data(), scratch_.size(), offset, path_));
  ++pages_written_;
  return Status::OK();
}

Status PageFileWriter::Finish(const PageFileHeader& header) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("paged index: writer already finished");
  }
  if (header.page_size != page_size_ || header.page_count != pages_written_) {
    return Status::InvalidArgument(
        "paged index: header disagrees with the pages written (" +
        std::to_string(pages_written_) + " pages of " +
        std::to_string(page_size_) + " bytes)");
  }
  scratch_.assign(page_size_, 0);
  EncodePageFileHeader(header, scratch_.data());
  ILQ_RETURN_NOT_OK(PwriteAll(fd_, scratch_.data(), scratch_.size(), 0,
                              path_));
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("paged index: fsync of", path_));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IOError(Errno("paged index: close of", path_));
  }
  fd_ = -1;
  return Status::OK();
}

}  // namespace ilq
