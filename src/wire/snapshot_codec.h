// Binary catalog-snapshot format — how a shard server bootstraps from a
// file instead of re-running datagen (ROADMAP wire-protocol item).
//
// File layout (little-endian, built on wire/codec.h):
//
//   | u32 magic "ILQS" | u16 version | u64 epoch |
//   | u32 point count  | { u32 id, f64 x, f64 y } ...            |
//   | u32 uncertain count | { u32 id, pdf (wire/message.h) } ... |
//
// Pdf parameters are stored as exact IEEE-754 bit patterns, so an engine
// built from a loaded snapshot answers bit-identically to one built from
// the original object vectors (tests/snapshot_test.cc). AnyPdf objects are
// not snapshotable (kNotImplemented — same limit as the wire pdf codec).
//
// Decoding is total: wrong magic / wrong version / truncated or corrupt
// sections return an error Status, never a crash. Counts are validated
// against the bytes actually present before any allocation.

#ifndef ILQ_WIRE_SNAPSHOT_CODEC_H_
#define ILQ_WIRE_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "object/snapshot.h"
#include "wire/codec.h"

namespace ilq {

/// First four bytes of every snapshot file: "ILQS".
inline constexpr uint32_t kSnapshotMagic = 0x53514C49;

/// Current snapshot format version.
inline constexpr uint16_t kSnapshotVersion = 1;

/// Appends the snapshot encoding to \p out. Fails (kNotImplemented) when
/// an uncertain object carries an open-world AnyPdf.
Status EncodeSnapshot(const CatalogImage& snapshot, ByteWriter* out);

/// Decodes a snapshot from \p bytes. kInvalidArgument: bad magic, version
/// or section contents; kOutOfRange: truncated.
Result<CatalogImage> DecodeSnapshot(std::span<const uint8_t> bytes);

/// Writes the snapshot to \p path (overwrite). kIOError on filesystem
/// failure, kNotImplemented on AnyPdf objects.
Status SaveCatalogImage(const std::string& path,
                           const CatalogImage& snapshot);

/// How LoadCatalogImage gets the file's bytes into memory.
enum class SnapshotLoadMode {
  /// mmap the file and decode in place; falls back to the read() path when
  /// the mapping fails (e.g. a filesystem without mmap support). The
  /// default: large catalog images skip one full buffer copy.
  kAuto,
  /// mmap only; kIOError when the file cannot be mapped (test hook — pins
  /// that the fast path actually ran).
  kMmap,
  /// Plain read() into a buffer (the historical path).
  kRead,
};

/// Reads and decodes a snapshot file. kIOError when the file cannot be
/// read; decode errors as in DecodeSnapshot. The decoded image is
/// bit-identical across load modes — DecodeSnapshot sees the same byte
/// span either way (tests/snapshot_test.cc pins the round trip).
Result<CatalogImage> LoadCatalogImage(
    const std::string& path, SnapshotLoadMode mode = SnapshotLoadMode::kAuto);

}  // namespace ilq

#endif  // ILQ_WIRE_SNAPSHOT_CODEC_H_
