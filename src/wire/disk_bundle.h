// Disk bundle — one directory holding everything a shard process needs to
// serve a catalog out of core (ISSUE 8): the ILQS catalog image plus the
// ILQP paged index files for the point tree, the uncertain tree and the
// PTI. WriteDiskBundle produces the layout; OpenDiskBundle turns it back
// into a QueryEngine, either mounting the indexes (StorageMode::kPaged)
// or rebuilding them in memory from the catalog alone (kMemory — the
// index files are then ignored, which also makes the bundle a superset of
// the plain --snapshot bootstrap path).
//
//   <dir>/catalog.ilqs       object vectors + epoch (wire/snapshot_codec.h)
//   <dir>/points.ilqp        paged point R-tree
//   <dir>/uncertains.ilqp    paged uncertain R-tree
//   <dir>/pti.ilqp           paged PTI tree (absent when no uncertains)
//
// Both engines — mounted or rebuilt — answer bit-identically for every
// query method and kernel (tests/disk_engine_test.cc pins this).

#ifndef ILQ_WIRE_DISK_BUNDLE_H_
#define ILQ_WIRE_DISK_BUNDLE_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "object/snapshot.h"

namespace ilq {

/// \brief File paths of one bundle directory.
struct DiskBundlePaths {
  std::string catalog;
  PagedIndexFiles index;

  /// The conventional layout (see the header comment).
  static DiskBundlePaths InDir(const std::string& dir);
};

/// Writes a complete bundle for \p image under \p dir (created if needed,
/// files overwritten): saves the catalog image, builds an engine with
/// \p config, and serializes its indexes. The write-side storage mode is
/// irrelevant — indexes are always built in memory here and saved; the
/// mode in \p config only matters to OpenDiskBundle.
Status WriteDiskBundle(const CatalogImage& image, const std::string& dir,
                       const EngineConfig& config = EngineConfig{});

/// Opens a bundle directory as an engine. config.storage selects the
/// backend: kPaged mounts the index files behind LRU buffers
/// (QueryEngine::OpenPaged — read-only, cross-checked against the
/// catalog); kMemory loads the catalog and rebuilds indexes in RAM
/// (updatable, index files untouched).
Result<QueryEngine> OpenDiskBundle(const std::string& dir,
                                   const EngineConfig& config);

}  // namespace ilq

#endif  // ILQ_WIRE_DISK_BUNDLE_H_
