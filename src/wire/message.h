// Wire messages of the multi-process serving tier: a versioned,
// length-prefixed frame envelope plus the three payloads that flow between
// a Router and a ShardServer (net/).
//
// Frame layout (all integers little-endian):
//
//   | u32 payload_size | u8 version | u8 type | payload bytes ... |
//
// The 6-byte header is fixed; payload_size counts only the payload.
// Version mismatches and unknown frame types decode to kInvalidArgument; a
// payload_size above the receiver's limit is rejected as kOutOfRange
// *before* any allocation (net/frame.h enforces this on the socket path).
//
// Payloads:
//   kRequest   issuer (id + pdf) + QueryMethod + RangeQuerySpec + prune
//              toggles — everything QueryEngine needs to evaluate one
//              imprecise query. The issuer's U-catalog is NOT shipped; the
//              server rebuilds it on its engine's ladder, which is how the
//              in-process path works too (MakeIssuer), so answers stay
//              bit-identical.
//   kResponse  AnswerSet + a WireServeStats block (serving epoch, server-
//              side latency, queue counters, latency quantiles).
//   kError     StatusCode + message; DecodeError reconstitutes the Status.
//
// Version 2 adds the continuous-session frames (the wire face of
// serve/subscription_manager.h):
//   kRegister            client subscription id + a full kRequest body —
//                        opens a continuous session at the issuer's
//                        initial position.
//   kContinuousUpdate    subscription id + the issuer's new imprecise
//                        position (id + pdf) — one trajectory step.
//   kContinuousResponse  subscription id + revalidated flag + the valid
//                        region the answers hold over + a full kResponse
//                        body. Sent for kRegister, kContinuousUpdate and
//                        kUnregister (the latter with empty answers).
//   kUnregister          subscription id — closes the session.
// Subscription ids are chosen by the client (router) and scoped to the
// connection; servers drop a connection's sessions when it closes.
//
// Pdf encoding covers the closed-world PdfVariant alternatives (uniform
// rect/disk, truncated gaussian, histogram). AnyPdf — an arbitrary
// external UncertaintyPdf — has no portable parameterization and encodes
// to kNotImplemented; open-world pdfs stay an in-process feature.
//
// Every decoder is total: arbitrary bytes yield an error Status, never a
// crash, never an unchecked allocation (embedded counts are validated
// against the bytes actually present — ByteReader::ReadCount). Decoded
// numeric fields are validated (finite spec, threshold in [0,1], pdf
// factories re-run their own checks), so a malicious peer cannot smuggle
// NaNs into the evaluators.

#ifndef ILQ_WIRE_MESSAGE_H_
#define ILQ_WIRE_MESSAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/batch.h"
#include "core/query.h"
#include "geometry/rect.h"
#include "object/point_object.h"
#include "prob/pdf_variant.h"
#include "wire/codec.h"

namespace ilq {

/// Protocol version carried in every frame header. History: 1 = one-shot
/// request/response/error; 2 = continuous-session frames added.
inline constexpr uint8_t kWireVersion = 2;

/// Fixed size of the frame header (u32 size + u8 version + u8 type).
inline constexpr size_t kFrameHeaderBytes = 6;

/// Default per-frame payload limit (servers and routers can lower/raise it
/// via their options). Catalog snapshots use their own file format and are
/// not framed, so 1 MiB comfortably bounds any request/response.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// \brief What a frame carries. Stable wire values — append, never
/// renumber (DecodeFrameHeader accepts the contiguous range).
enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kRegister = 4,            ///< open a continuous session (v2)
  kContinuousUpdate = 5,    ///< one trajectory step (v2)
  kContinuousResponse = 6,  ///< answer + valid region (v2)
  kUnregister = 7,          ///< close a continuous session (v2)
};

/// \brief Decoded frame header.
struct FrameHeader {
  uint32_t payload_size = 0;
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kRequest;
};

/// Appends the 6-byte header for a payload of \p payload_size bytes.
void EncodeFrameHeader(FrameType type, uint32_t payload_size,
                       ByteWriter* out);

/// Decodes a header from \p bytes (which must hold at least
/// kFrameHeaderBytes). kOutOfRange: truncated header or payload_size >
/// \p max_payload; kInvalidArgument: wrong version or unknown type.
Status DecodeFrameHeader(std::span<const uint8_t> bytes, size_t max_payload,
                         FrameHeader* out);

// ---- Pdf codec ------------------------------------------------------------

/// Appends the portable encoding of \p pdf. AnyPdf → kNotImplemented.
Status EncodePdf(const PdfVariant& pdf, ByteWriter* out);

/// Decodes one pdf, re-validating through the pdf factories (so malformed
/// parameters fail exactly like malformed constructor arguments).
Result<PdfVariant> DecodePdf(ByteReader* in);

// ---- Request --------------------------------------------------------------

/// \brief One query as it travels to a shard server.
struct WireRequest {
  ObjectId issuer_id = 0;
  PdfVariant issuer_pdf;
  QueryMethod method = QueryMethod::kIpq;
  BatchSpec spec;

  WireRequest() : issuer_pdf(MakeDefaultWirePdf()) {}

 private:
  static PdfVariant MakeDefaultWirePdf();
};

/// Encodes the request *payload* (no frame header; see WriteFrame).
Status EncodeRequest(const WireRequest& request, ByteWriter* out);

/// Decodes a request payload. The whole span must be consumed (trailing
/// bytes → kInvalidArgument).
Result<WireRequest> DecodeRequest(std::span<const uint8_t> payload);

// ---- Response -------------------------------------------------------------

/// \brief Server-side counters riding along with every answer.
struct WireServeStats {
  uint64_t epoch = 0;       ///< serving epoch the answer was computed at
  double server_ms = 0.0;   ///< submit-to-complete time on the server
  uint64_t submitted = 0;   ///< AsyncServer::stats() snapshot...
  uint64_t completed = 0;
  uint64_t pending = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  friend bool operator==(const WireServeStats&,
                         const WireServeStats&) = default;
};

/// \brief One answer as it travels back to the router.
struct WireResponse {
  AnswerSet answers;
  WireServeStats stats;
};

/// Encodes the response payload.
Status EncodeResponse(const WireResponse& response, ByteWriter* out);

/// Decodes a response payload (whole-span consumption enforced).
Result<WireResponse> DecodeResponse(std::span<const uint8_t> payload);

// ---- Error ----------------------------------------------------------------

/// Encodes a non-OK Status as an error payload (OK → kInvalidArgument;
/// send a response instead).
Status EncodeError(const Status& error, ByteWriter* out);

/// Decodes an error payload: \p out receives the Status the frame was
/// built from; the return value reports the decode itself (Result<Status>
/// would make the two indistinguishable).
Status DecodeError(std::span<const uint8_t> payload, Status* out);

// ---- Continuous sessions (v2) ---------------------------------------------

/// \brief Opens a continuous session: a client-chosen subscription id
/// (scoped to the connection) plus the full one-shot request the session
/// starts from.
struct WireContinuousRequest {
  uint64_t subscription_id = 0;
  WireRequest request;
};

/// Encodes a kRegister payload.
Status EncodeContinuousRequest(const WireContinuousRequest& request,
                               ByteWriter* out);

/// Decodes a kRegister payload (whole-span consumption enforced).
Result<WireContinuousRequest> DecodeContinuousRequest(
    std::span<const uint8_t> payload);

/// \brief One trajectory step: the issuer's new imprecise position. The
/// issuer id is repeated so the server can cross-check it against the
/// registration (a mismatch is a protocol error, not a position update).
struct WireContinuousUpdate {
  uint64_t subscription_id = 0;
  ObjectId issuer_id = 0;
  PdfVariant issuer_pdf;

  WireContinuousUpdate();
};

/// Encodes a kContinuousUpdate payload.
Status EncodeContinuousUpdate(const WireContinuousUpdate& update,
                              ByteWriter* out);

/// Decodes a kContinuousUpdate payload.
Result<WireContinuousUpdate> DecodeContinuousUpdate(
    std::span<const uint8_t> payload);

/// \brief Answer to any continuous frame: the valid region the answers
/// hold over (the client may skip re-asking while its region stays
/// inside), whether the server answered by validation (basis reuse) or
/// re-evaluation, and a full response body — whose stats.epoch is the
/// basis epoch the answers are coherent with.
struct WireContinuousResponse {
  uint64_t subscription_id = 0;
  bool revalidated = false;
  Rect valid_region = Rect::Empty();
  WireResponse response;
};

/// Encodes a kContinuousResponse payload.
Status EncodeContinuousResponse(const WireContinuousResponse& response,
                                ByteWriter* out);

/// Decodes a kContinuousResponse payload. The valid region must be
/// NaN-free (it feeds region intersections on the router).
Result<WireContinuousResponse> DecodeContinuousResponse(
    std::span<const uint8_t> payload);

/// Encodes a kUnregister payload (just the subscription id).
Status EncodeUnregister(uint64_t subscription_id, ByteWriter* out);

/// Decodes a kUnregister payload.
Result<uint64_t> DecodeUnregister(std::span<const uint8_t> payload);

}  // namespace ilq

#endif  // ILQ_WIRE_MESSAGE_H_
