#include "wire/disk_bundle.h"

#include <filesystem>
#include <utility>

#include "wire/snapshot_codec.h"

namespace ilq {

DiskBundlePaths DiskBundlePaths::InDir(const std::string& dir) {
  DiskBundlePaths paths;
  paths.catalog = dir + "/catalog.ilqs";
  paths.index = PagedIndexFiles::InDir(dir);
  return paths;
}

Status WriteDiskBundle(const CatalogImage& image, const std::string& dir,
                       const EngineConfig& config) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("bundle: cannot create directory '" + dir +
                           "': " + ec.message());
  }
  const DiskBundlePaths paths = DiskBundlePaths::InDir(dir);
  ILQ_RETURN_NOT_OK(SaveCatalogImage(paths.catalog, image));

  Result<QueryEngine> built =
      QueryEngine::Build(image.points, image.uncertains, config);
  if (!built.ok()) return built.status();
  return built->SavePagedIndexes(paths.index);
}

Result<QueryEngine> OpenDiskBundle(const std::string& dir,
                                   const EngineConfig& config) {
  const DiskBundlePaths paths = DiskBundlePaths::InDir(dir);
  Result<CatalogImage> image = LoadCatalogImage(paths.catalog);
  if (!image.ok()) return image.status();
  if (config.storage == StorageMode::kPaged) {
    return QueryEngine::OpenPaged(std::move(image).ValueOrDie(), paths.index,
                                  config);
  }
  CatalogImage loaded = std::move(image).ValueOrDie();
  return QueryEngine::Build(std::move(loaded.points),
                            std::move(loaded.uncertains), config);
}

}  // namespace ilq
