// Byte-level primitives of the wire layer: a growable little-endian writer
// and a bounds-checked reader.
//
// Everything the multi-process tier persists or transmits — request/response
// frames (wire/message.h) and catalog snapshots (wire/snapshot_codec.h) —
// is built from these two types, so the encoding rules live in exactly one
// place: fixed-width integers little-endian, doubles as the IEEE-754 bit
// pattern (std::bit_cast, so round-trips are bit-exact), strings and blobs
// length-prefixed with a u32.
//
// The reader never reads past the buffer and never trusts an embedded count
// without checking it against the bytes that are actually left (see
// ReadCount) — feeding it arbitrary bytes must yield an error Status, not a
// crash or a giant allocation. The codec fuzz suite
// (tests/wire_codec_test.cc) hammers exactly this contract.

#ifndef ILQ_WIRE_CODEC_H_
#define ILQ_WIRE_CODEC_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ilq {

/// \brief Append-only little-endian encoder.
class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v) { AppendLE(v); }
  void U32(uint32_t v) { AppendLE(v); }
  void U64(uint64_t v) { AppendLE(v); }
  /// IEEE-754 bit pattern; decoding returns the identical double.
  void F64(double v) { AppendLE(std::bit_cast<uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void Raw(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Overwrites 4 bytes at \p offset (frame-length back-patching).
  void PatchU32(size_t offset, uint32_t v) {
    for (size_t i = 0; i < 4; ++i) {
      bytes_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() && { return std::move(bytes_); }

 private:
  template <typename T>
  void AppendLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
///
/// Every accessor returns a Status and leaves the cursor unmoved on
/// failure; kOutOfRange means the buffer ended before the value did
/// (truncation).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Status U8(uint8_t* out) { return ReadLE(out); }
  Status U16(uint16_t* out) { return ReadLE(out); }
  Status U32(uint32_t* out) { return ReadLE(out); }
  Status U64(uint64_t* out) { return ReadLE(out); }
  Status F64(double* out) {
    uint64_t bits = 0;
    ILQ_RETURN_NOT_OK(ReadLE(&bits));
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }
  Status String(std::string* out);

  /// Reads a u32 element count and validates it against the bytes left:
  /// the payload must still hold at least count × \p min_element_bytes, so
  /// a forged count can neither over-allocate nor over-read.
  Status ReadCount(size_t min_element_bytes, size_t* out);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  /// True when the whole buffer has been consumed (trailing garbage after
  /// a message is a decode error for the framed formats).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status ReadLE(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("wire: truncated buffer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::OK();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace ilq

#endif  // ILQ_WIRE_CODEC_H_
