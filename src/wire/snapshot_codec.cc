#include "wire/snapshot_codec.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>

#include "wire/message.h"

namespace ilq {

Status EncodeSnapshot(const CatalogImage& snapshot, ByteWriter* out) {
  if (snapshot.points.size() > UINT32_MAX ||
      snapshot.uncertains.size() > UINT32_MAX) {
    return Status::OutOfRange(
        "snapshot: section counts exceed the u32 count fields");
  }
  out->U32(kSnapshotMagic);
  out->U16(kSnapshotVersion);
  out->U64(snapshot.epoch);
  out->U32(static_cast<uint32_t>(snapshot.points.size()));
  for (const PointObject& point : snapshot.points) {
    out->U32(point.id);
    out->F64(point.location.x);
    out->F64(point.location.y);
  }
  out->U32(static_cast<uint32_t>(snapshot.uncertains.size()));
  for (const UncertainObject& object : snapshot.uncertains) {
    out->U32(object.id());
    ILQ_RETURN_NOT_OK(EncodePdf(object.pdf_variant(), out));
  }
  return Status::OK();
}

Result<CatalogImage> DecodeSnapshot(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  ILQ_RETURN_NOT_OK(reader.U32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(
        "snapshot: bad magic (not a catalog snapshot file)");
  }
  uint16_t version = 0;
  ILQ_RETURN_NOT_OK(reader.U16(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot: unsupported format version " + std::to_string(version) +
        " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  CatalogImage snapshot;
  ILQ_RETURN_NOT_OK(reader.U64(&snapshot.epoch));

  size_t point_count = 0;
  constexpr size_t kPointBytes = sizeof(uint32_t) + 2 * sizeof(double);
  ILQ_RETURN_NOT_OK(reader.ReadCount(kPointBytes, &point_count));
  snapshot.points.reserve(point_count);
  for (size_t i = 0; i < point_count; ++i) {
    PointObject point;
    ILQ_RETURN_NOT_OK(reader.U32(&point.id));
    ILQ_RETURN_NOT_OK(reader.F64(&point.location.x));
    ILQ_RETURN_NOT_OK(reader.F64(&point.location.y));
    snapshot.points.push_back(point);
  }

  size_t uncertain_count = 0;
  // id + pdf tag is the smallest possible uncertain record.
  ILQ_RETURN_NOT_OK(reader.ReadCount(sizeof(uint32_t) + 1, &uncertain_count));
  snapshot.uncertains.reserve(uncertain_count);
  for (size_t i = 0; i < uncertain_count; ++i) {
    uint32_t id = 0;
    ILQ_RETURN_NOT_OK(reader.U32(&id));
    Result<PdfVariant> pdf = DecodePdf(&reader);
    if (!pdf.ok()) return pdf.status();
    snapshot.uncertains.emplace_back(id, std::move(pdf).ValueOrDie());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot: trailing bytes after the uncertain section");
  }
  return snapshot;
}

Status SaveCatalogImage(const std::string& path,
                           const CatalogImage& snapshot) {
  ByteWriter writer;
  ILQ_RETURN_NOT_OK(EncodeSnapshot(snapshot, &writer));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("snapshot: cannot open '" + path +
                           "' for writing");
  }
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  out.flush();
  if (!out) {
    return Status::IOError("snapshot: write to '" + path + "' failed");
  }
  return Status::OK();
}

namespace {

// Decodes straight out of a read-only private mapping — no buffer copy.
// Returns kIOError when the file cannot be opened or mapped (kAuto
// callers then fall back to the read() path below).
Result<CatalogImage> LoadViaMmap(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("snapshot: cannot open '" + path +
                           "' for reading");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("snapshot: cannot stat '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is simply a decode
    // error, reported through the same path as the read() branch.
    ::close(fd);
    return DecodeSnapshot({});
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) {
    return Status::IOError("snapshot: cannot mmap '" + path + "'");
  }
  Result<CatalogImage> decoded = DecodeSnapshot(
      {static_cast<const uint8_t*>(mapped), size});
  ::munmap(mapped, size);
  return decoded;
}

Result<CatalogImage> LoadViaRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("snapshot: cannot open '" + path +
                           "' for reading");
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IOError("snapshot: cannot determine size of '" + path +
                           "'");
  }
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("snapshot: read from '" + path + "' failed");
  }
  return DecodeSnapshot(bytes);
}

}  // namespace

Result<CatalogImage> LoadCatalogImage(const std::string& path,
                                      SnapshotLoadMode mode) {
  // A directory (or device) can open and even report a bogus size, turning
  // the buffer allocation / mapping below into bad_alloc or worse — reject
  // anything that isn't a regular file up front.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Status::IOError("snapshot: '" + path + "' is not a regular file");
  }
  if (mode == SnapshotLoadMode::kRead) return LoadViaRead(path);
  Result<CatalogImage> mapped = LoadViaMmap(path);
  if (mode == SnapshotLoadMode::kMmap) return mapped;
  // kAuto: fall back to read() only on I/O failure — a *decode* failure is
  // a property of the bytes, not the transport, and re-reading cannot fix
  // it.
  if (!mapped.ok() && mapped.status().code() == StatusCode::kIOError) {
    return LoadViaRead(path);
  }
  return mapped;
}

}  // namespace ilq
