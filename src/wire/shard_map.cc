#include "wire/shard_map.h"

#include <filesystem>
#include <fstream>

namespace ilq {

namespace {

void EncodeRect(const Rect& r, ByteWriter* out) {
  out->F64(r.xmin);
  out->F64(r.xmax);
  out->F64(r.ymin);
  out->F64(r.ymax);
}

Status DecodeRect(ByteReader* in, Rect* out) {
  ILQ_RETURN_NOT_OK(in->F64(&out->xmin));
  ILQ_RETURN_NOT_OK(in->F64(&out->xmax));
  ILQ_RETURN_NOT_OK(in->F64(&out->ymin));
  return in->F64(&out->ymax);
}

}  // namespace

void EncodeShardMap(const ShardMap& map, ByteWriter* out) {
  out->U32(kShardMapMagic);
  out->U16(kShardMapVersion);
  out->U32(static_cast<uint32_t>(map.size()));
  for (const ShardBounds& bounds : map) {
    EncodeRect(bounds.point_bounds, out);
    EncodeRect(bounds.uncertain_bounds, out);
  }
}

Result<ShardMap> DecodeShardMap(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  ILQ_RETURN_NOT_OK(reader.U32(&magic));
  if (magic != kShardMapMagic) {
    return Status::InvalidArgument(
        "shard map: bad magic (not a shard-map file)");
  }
  uint16_t version = 0;
  ILQ_RETURN_NOT_OK(reader.U16(&version));
  if (version != kShardMapVersion) {
    return Status::InvalidArgument(
        "shard map: unsupported format version " + std::to_string(version));
  }
  size_t count = 0;
  ILQ_RETURN_NOT_OK(reader.ReadCount(8 * sizeof(double), &count));
  ShardMap map;
  map.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ShardBounds bounds;
    ILQ_RETURN_NOT_OK(DecodeRect(&reader, &bounds.point_bounds));
    ILQ_RETURN_NOT_OK(DecodeRect(&reader, &bounds.uncertain_bounds));
    map.push_back(bounds);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("shard map: trailing bytes");
  }
  return map;
}

Status SaveShardMap(const std::string& path, const ShardMap& map) {
  ByteWriter writer;
  EncodeShardMap(map, &writer);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("shard map: cannot open '" + path +
                           "' for writing");
  }
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  out.flush();
  if (!out) {
    return Status::IOError("shard map: write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<ShardMap> LoadShardMap(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Status::IOError("shard map: '" + path +
                           "' is not a regular file");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("shard map: cannot open '" + path +
                           "' for reading");
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IOError("shard map: cannot determine size of '" + path +
                           "'");
  }
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("shard map: read from '" + path + "' failed");
  }
  return DecodeShardMap(bytes);
}

}  // namespace ilq
