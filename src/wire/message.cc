#include "wire/message.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

namespace ilq {

namespace {

// Pdf alternative tags. Stable wire values — append, never renumber.
constexpr uint8_t kPdfUniformRect = 0;
constexpr uint8_t kPdfUniformDisk = 1;
constexpr uint8_t kPdfGaussian = 2;
constexpr uint8_t kPdfHistogram = 3;

void EncodeRect(const Rect& r, ByteWriter* out) {
  out->F64(r.xmin);
  out->F64(r.xmax);
  out->F64(r.ymin);
  out->F64(r.ymax);
}

Status DecodeRect(ByteReader* in, Rect* out) {
  ILQ_RETURN_NOT_OK(in->F64(&out->xmin));
  ILQ_RETURN_NOT_OK(in->F64(&out->xmax));
  ILQ_RETURN_NOT_OK(in->F64(&out->ymin));
  return in->F64(&out->ymax);
}

Status RequireConsumed(const ByteReader& in, const char* what) {
  if (!in.AtEnd()) {
    return Status::InvalidArgument(std::string("wire: trailing bytes after ") +
                                   what);
  }
  return Status::OK();
}

}  // namespace

void EncodeFrameHeader(FrameType type, uint32_t payload_size,
                       ByteWriter* out) {
  out->U32(payload_size);
  out->U8(kWireVersion);
  out->U8(static_cast<uint8_t>(type));
}

Status DecodeFrameHeader(std::span<const uint8_t> bytes, size_t max_payload,
                         FrameHeader* out) {
  ByteReader reader(bytes);
  FrameHeader header;
  uint8_t type = 0;
  ILQ_RETURN_NOT_OK(reader.U32(&header.payload_size));
  ILQ_RETURN_NOT_OK(reader.U8(&header.version));
  ILQ_RETURN_NOT_OK(reader.U8(&type));
  if (header.version != kWireVersion) {
    return Status::InvalidArgument(
        "wire: unsupported protocol version " +
        std::to_string(header.version) + " (expected " +
        std::to_string(kWireVersion) + ")");
  }
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kUnregister)) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  if (header.payload_size > max_payload) {
    return Status::OutOfRange(
        "wire: frame payload of " + std::to_string(header.payload_size) +
        " bytes exceeds the " + std::to_string(max_payload) + "-byte limit");
  }
  *out = header;
  return Status::OK();
}

// ---- Pdf codec ------------------------------------------------------------

Status EncodePdf(const PdfVariant& pdf, ByteWriter* out) {
  return std::visit(
      [out](const auto& alt) -> Status {
        using T = std::decay_t<decltype(alt)>;
        if constexpr (std::is_same_v<T, UniformRectPdf>) {
          out->U8(kPdfUniformRect);
          EncodeRect(alt.bounds(), out);
        } else if constexpr (std::is_same_v<T, UniformDiskPdf>) {
          out->U8(kPdfUniformDisk);
          out->F64(alt.disk().center.x);
          out->F64(alt.disk().center.y);
          out->F64(alt.disk().radius);
        } else if constexpr (std::is_same_v<T, TruncatedGaussianPdf>) {
          out->U8(kPdfGaussian);
          EncodeRect(alt.bounds(), out);
          out->F64(alt.sigma_x());
          out->F64(alt.sigma_y());
        } else if constexpr (std::is_same_v<T, HistogramPdf>) {
          out->U8(kPdfHistogram);
          EncodeRect(alt.bounds(), out);
          out->U32(static_cast<uint32_t>(alt.nx()));
          out->U32(static_cast<uint32_t>(alt.ny()));
          for (double m : alt.cell_masses()) out->F64(m);
        } else {
          static_assert(std::is_same_v<T, AnyPdf>);
          return Status::NotImplemented(
              "wire: AnyPdf (open-world pdf '" + alt.name() +
              "') has no portable encoding");
        }
        return Status::OK();
      },
      pdf);
}

Result<PdfVariant> DecodePdf(ByteReader* in) {
  uint8_t tag = 0;
  ILQ_RETURN_NOT_OK(in->U8(&tag));
  switch (tag) {
    case kPdfUniformRect: {
      Rect region;
      ILQ_RETURN_NOT_OK(DecodeRect(in, &region));
      Result<UniformRectPdf> pdf = UniformRectPdf::Make(region);
      if (!pdf.ok()) return pdf.status();
      return PdfVariant(std::move(pdf).ValueOrDie());
    }
    case kPdfUniformDisk: {
      Circle disk;
      ILQ_RETURN_NOT_OK(in->F64(&disk.center.x));
      ILQ_RETURN_NOT_OK(in->F64(&disk.center.y));
      ILQ_RETURN_NOT_OK(in->F64(&disk.radius));
      Result<UniformDiskPdf> pdf = UniformDiskPdf::Make(disk);
      if (!pdf.ok()) return pdf.status();
      return PdfVariant(std::move(pdf).ValueOrDie());
    }
    case kPdfGaussian: {
      Rect region;
      double sx = 0.0;
      double sy = 0.0;
      ILQ_RETURN_NOT_OK(DecodeRect(in, &region));
      ILQ_RETURN_NOT_OK(in->F64(&sx));
      ILQ_RETURN_NOT_OK(in->F64(&sy));
      Result<TruncatedGaussianPdf> pdf =
          TruncatedGaussianPdf::Make(region, sx, sy);
      if (!pdf.ok()) return pdf.status();
      return PdfVariant(std::move(pdf).ValueOrDie());
    }
    case kPdfHistogram: {
      Rect region;
      uint32_t nx = 0;
      uint32_t ny = 0;
      ILQ_RETURN_NOT_OK(DecodeRect(in, &region));
      ILQ_RETURN_NOT_OK(in->U32(&nx));
      ILQ_RETURN_NOT_OK(in->U32(&ny));
      const uint64_t cells = static_cast<uint64_t>(nx) * ny;
      // Division form: `cells * sizeof(double)` wraps for cells >= 2^61
      // (nx=2^31, ny=2^30 gives 0 mod 2^64) and would let a forged frame
      // reach the vector constructor and throw past the handler thread.
      if (cells == 0 || cells > in->remaining() / sizeof(double)) {
        return Status::OutOfRange(
            "wire: histogram cell count " + std::to_string(cells) +
            " inconsistent with " + std::to_string(in->remaining()) +
            " remaining bytes");
      }
      std::vector<double> masses(static_cast<size_t>(cells));
      for (double& m : masses) ILQ_RETURN_NOT_OK(in->F64(&m));
      Result<HistogramPdf> pdf =
          HistogramPdf::FromCellMasses(region, nx, ny, std::move(masses));
      if (!pdf.ok()) return pdf.status();
      return PdfVariant(std::move(pdf).ValueOrDie());
    }
    default:
      return Status::InvalidArgument("wire: unknown pdf tag " +
                                     std::to_string(tag));
  }
}

// ---- Request --------------------------------------------------------------

PdfVariant WireRequest::MakeDefaultWirePdf() {
  return PdfVariant(
      UniformRectPdf::Make(Rect(0.0, 1.0, 0.0, 1.0)).ValueOrDie());
}

namespace {

// Body codecs shared by the one-shot frames and the continuous frames
// (which prefix a subscription id). Encoding a register/update payload
// MUST stay byte-for-byte the one-shot layout after the prefix, so the two
// paths cannot drift.
Status EncodeRequestBody(const WireRequest& request, ByteWriter* out) {
  out->U8(static_cast<uint8_t>(request.method));
  out->F64(request.spec.query.w);
  out->F64(request.spec.query.h);
  out->F64(request.spec.query.threshold);
  const uint8_t prune =
      static_cast<uint8_t>((request.spec.prune.strategy1 ? 1 : 0) |
                           (request.spec.prune.strategy2 ? 2 : 0) |
                           (request.spec.prune.strategy3 ? 4 : 0));
  out->U8(prune);
  out->U32(request.issuer_id);
  return EncodePdf(request.issuer_pdf, out);
}

Status DecodeRequestBody(ByteReader* reader_ptr, WireRequest* out) {
  ByteReader& reader = *reader_ptr;
  WireRequest& request = *out;
  uint8_t method = 0;
  ILQ_RETURN_NOT_OK(reader.U8(&method));
  if (method >= kQueryMethodCount) {
    return Status::InvalidArgument("wire: unknown query method " +
                                   std::to_string(method));
  }
  request.method = static_cast<QueryMethod>(method);
  ILQ_RETURN_NOT_OK(reader.F64(&request.spec.query.w));
  ILQ_RETURN_NOT_OK(reader.F64(&request.spec.query.h));
  ILQ_RETURN_NOT_OK(reader.F64(&request.spec.query.threshold));
  if (!std::isfinite(request.spec.query.w) || request.spec.query.w < 0.0 ||
      !std::isfinite(request.spec.query.h) || request.spec.query.h < 0.0) {
    return Status::InvalidArgument(
        "wire: query half-extents must be finite and non-negative");
  }
  if (!std::isfinite(request.spec.query.threshold) ||
      request.spec.query.threshold < 0.0 ||
      request.spec.query.threshold > 1.0) {
    return Status::InvalidArgument(
        "wire: probability threshold must lie in [0, 1]");
  }
  uint8_t prune = 0;
  ILQ_RETURN_NOT_OK(reader.U8(&prune));
  if ((prune & ~uint8_t{7}) != 0) {
    return Status::InvalidArgument("wire: reserved prune bits set");
  }
  request.spec.prune.strategy1 = (prune & 1) != 0;
  request.spec.prune.strategy2 = (prune & 2) != 0;
  request.spec.prune.strategy3 = (prune & 4) != 0;
  ILQ_RETURN_NOT_OK(reader.U32(&request.issuer_id));
  Result<PdfVariant> pdf = DecodePdf(&reader);
  if (!pdf.ok()) return pdf.status();
  request.issuer_pdf = std::move(pdf).ValueOrDie();
  return Status::OK();
}

Status EncodeResponseBody(const WireResponse& response, ByteWriter* out) {
  if (response.answers.size() > UINT32_MAX) {
    return Status::OutOfRange(
        "wire: answer set of " + std::to_string(response.answers.size()) +
        " entries exceeds the u32 count field");
  }
  out->U64(response.stats.epoch);
  out->F64(response.stats.server_ms);
  out->U64(response.stats.submitted);
  out->U64(response.stats.completed);
  out->U64(response.stats.pending);
  out->F64(response.stats.p50_ms);
  out->F64(response.stats.p95_ms);
  out->F64(response.stats.p99_ms);
  out->U32(static_cast<uint32_t>(response.answers.size()));
  for (const ProbabilisticAnswer& answer : response.answers) {
    out->U32(answer.id);
    out->F64(answer.probability);
  }
  return Status::OK();
}

Status DecodeResponseBody(ByteReader* reader_ptr, WireResponse* out) {
  ByteReader& reader = *reader_ptr;
  WireResponse& response = *out;
  ILQ_RETURN_NOT_OK(reader.U64(&response.stats.epoch));
  ILQ_RETURN_NOT_OK(reader.F64(&response.stats.server_ms));
  ILQ_RETURN_NOT_OK(reader.U64(&response.stats.submitted));
  ILQ_RETURN_NOT_OK(reader.U64(&response.stats.completed));
  ILQ_RETURN_NOT_OK(reader.U64(&response.stats.pending));
  ILQ_RETURN_NOT_OK(reader.F64(&response.stats.p50_ms));
  ILQ_RETURN_NOT_OK(reader.F64(&response.stats.p95_ms));
  ILQ_RETURN_NOT_OK(reader.F64(&response.stats.p99_ms));
  size_t count = 0;
  ILQ_RETURN_NOT_OK(
      reader.ReadCount(sizeof(uint32_t) + sizeof(double), &count));
  response.answers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ProbabilisticAnswer answer;
    ILQ_RETURN_NOT_OK(reader.U32(&answer.id));
    ILQ_RETURN_NOT_OK(reader.F64(&answer.probability));
    response.answers.push_back(answer);
  }
  return Status::OK();
}

}  // namespace

Status EncodeRequest(const WireRequest& request, ByteWriter* out) {
  return EncodeRequestBody(request, out);
}

Result<WireRequest> DecodeRequest(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WireRequest request;
  ILQ_RETURN_NOT_OK(DecodeRequestBody(&reader, &request));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "request"));
  return request;
}

// ---- Response -------------------------------------------------------------

Status EncodeResponse(const WireResponse& response, ByteWriter* out) {
  return EncodeResponseBody(response, out);
}

Result<WireResponse> DecodeResponse(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WireResponse response;
  ILQ_RETURN_NOT_OK(DecodeResponseBody(&reader, &response));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "response"));
  return response;
}

// ---- Error ----------------------------------------------------------------

Status EncodeError(const Status& error, ByteWriter* out) {
  if (error.ok()) {
    return Status::InvalidArgument(
        "wire: OK is not an error; send a response frame");
  }
  out->U8(static_cast<uint8_t>(error.code()));
  out->String(error.message());
  return Status::OK();
}

Status DecodeError(std::span<const uint8_t> payload, Status* out) {
  ByteReader reader(payload);
  uint8_t code = 0;
  ILQ_RETURN_NOT_OK(reader.U8(&code));
  if (code == static_cast<uint8_t>(StatusCode::kOk) ||
      code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("wire: invalid error code " +
                                   std::to_string(code));
  }
  std::string message;
  ILQ_RETURN_NOT_OK(reader.String(&message));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "error"));
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// ---- Continuous sessions (v2) ---------------------------------------------

WireContinuousUpdate::WireContinuousUpdate()
    : issuer_pdf(UniformRectPdf::Make(Rect(0.0, 1.0, 0.0, 1.0))
                     .ValueOrDie()) {}

Status EncodeContinuousRequest(const WireContinuousRequest& request,
                               ByteWriter* out) {
  out->U64(request.subscription_id);
  return EncodeRequestBody(request.request, out);
}

Result<WireContinuousRequest> DecodeContinuousRequest(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WireContinuousRequest request;
  ILQ_RETURN_NOT_OK(reader.U64(&request.subscription_id));
  ILQ_RETURN_NOT_OK(DecodeRequestBody(&reader, &request.request));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "continuous request"));
  return request;
}

Status EncodeContinuousUpdate(const WireContinuousUpdate& update,
                              ByteWriter* out) {
  out->U64(update.subscription_id);
  out->U32(update.issuer_id);
  return EncodePdf(update.issuer_pdf, out);
}

Result<WireContinuousUpdate> DecodeContinuousUpdate(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WireContinuousUpdate update;
  ILQ_RETURN_NOT_OK(reader.U64(&update.subscription_id));
  ILQ_RETURN_NOT_OK(reader.U32(&update.issuer_id));
  Result<PdfVariant> pdf = DecodePdf(&reader);
  if (!pdf.ok()) return pdf.status();
  update.issuer_pdf = std::move(pdf).ValueOrDie();
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "continuous update"));
  return update;
}

Status EncodeContinuousResponse(const WireContinuousResponse& response,
                                ByteWriter* out) {
  out->U64(response.subscription_id);
  out->U8(response.revalidated ? 1 : 0);
  EncodeRect(response.valid_region, out);
  return EncodeResponseBody(response.response, out);
}

Result<WireContinuousResponse> DecodeContinuousResponse(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  WireContinuousResponse response;
  ILQ_RETURN_NOT_OK(reader.U64(&response.subscription_id));
  uint8_t revalidated = 0;
  ILQ_RETURN_NOT_OK(reader.U8(&revalidated));
  if (revalidated > 1) {
    return Status::InvalidArgument("wire: revalidated flag must be 0 or 1");
  }
  response.revalidated = revalidated != 0;
  ILQ_RETURN_NOT_OK(DecodeRect(&reader, &response.valid_region));
  // NaNs would silently poison the router's valid-region intersection
  // (every comparison false ⇒ regions look disjoint/empty in
  // inconsistent ways). Infinities are fine — Rect::Empty() is the
  // inverted-infinite rect and travels as-is.
  if (std::isnan(response.valid_region.xmin) ||
      std::isnan(response.valid_region.xmax) ||
      std::isnan(response.valid_region.ymin) ||
      std::isnan(response.valid_region.ymax)) {
    return Status::InvalidArgument("wire: valid region must be NaN-free");
  }
  ILQ_RETURN_NOT_OK(DecodeResponseBody(&reader, &response.response));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "continuous response"));
  return response;
}

Status EncodeUnregister(uint64_t subscription_id, ByteWriter* out) {
  out->U64(subscription_id);
  return Status::OK();
}

Result<uint64_t> DecodeUnregister(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint64_t subscription_id = 0;
  ILQ_RETURN_NOT_OK(reader.U64(&subscription_id));
  ILQ_RETURN_NOT_OK(RequireConsumed(reader, "unregister"));
  return subscription_id;
}

}  // namespace ilq
