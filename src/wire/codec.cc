#include "wire/codec.h"

namespace ilq {

Status ByteReader::String(std::string* out) {
  size_t length = 0;
  ILQ_RETURN_NOT_OK(ReadCount(/*min_element_bytes=*/1, &length));
  if (length == 0) {
    out->clear();
    return Status::OK();
  }
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), length);
  pos_ += length;
  return Status::OK();
}

Status ByteReader::ReadCount(size_t min_element_bytes, size_t* out) {
  uint32_t count = 0;
  ILQ_RETURN_NOT_OK(U32(&count));
  if (count != 0 &&
      static_cast<uint64_t>(count) * min_element_bytes > remaining()) {
    pos_ -= sizeof(uint32_t);
    return Status::OutOfRange(
        "wire: element count " + std::to_string(count) +
        " inconsistent with " + std::to_string(remaining()) +
        " remaining bytes");
  }
  *out = count;
  return Status::OK();
}

}  // namespace ilq
