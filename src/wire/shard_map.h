// Shard map — the routing table of the multi-process tier: per shard, the
// bounds a router needs for Minkowski-box fan-out (the same two rectangles
// ShardedEngine keeps per in-process shard).
//
// File layout (little-endian):
//
//   | u32 magic "ILQM" | u16 version | u32 shard count |
//   | { point_bounds 4×f64, uncertain_bounds 4×f64 } ... |
//
// Empty bounds (a shard with no points, say) are stored as the inverted-
// bounds Rect::Empty() representation and round-trip exactly.

#ifndef ILQ_WIRE_SHARD_MAP_H_
#define ILQ_WIRE_SHARD_MAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "wire/codec.h"

namespace ilq {

/// \brief Routing bounds of one shard: the union box of its point
/// locations and of its uncertainty regions (either may be empty).
struct ShardBounds {
  Rect point_bounds = Rect::Empty();
  Rect uncertain_bounds = Rect::Empty();
};

/// The routing table: ShardBounds in shard order. Entry i describes the
/// shard a router reaches through endpoint i.
using ShardMap = std::vector<ShardBounds>;

/// First four bytes of every shard-map file: "ILQM".
inline constexpr uint32_t kShardMapMagic = 0x4D514C49;

/// Current shard-map format version.
inline constexpr uint16_t kShardMapVersion = 1;

/// Appends the shard-map encoding to \p out.
void EncodeShardMap(const ShardMap& map, ByteWriter* out);

/// Decodes a shard map. kInvalidArgument: bad magic/version/trailing
/// bytes; kOutOfRange: truncated.
Result<ShardMap> DecodeShardMap(std::span<const uint8_t> bytes);

/// Writes the shard map to \p path (overwrite); kIOError on failure.
Status SaveShardMap(const std::string& path, const ShardMap& map);

/// Reads and decodes a shard-map file.
Result<ShardMap> LoadShardMap(const std::string& path);

}  // namespace ilq

#endif  // ILQ_WIRE_SHARD_MAP_H_
