#include "core/circular.h"

#include <variant>

#include "core/duality.h"
#include "core/expansion.h"
#include "geometry/minkowski.h"
#include "prob/pdf_variant.h"

namespace ilq {

AnswerSet EvaluateIPQCircular(const RTree& index,
                              const UniformDiskPdf& issuer,
                              const RangeQuerySpec& spec,
                              IndexStats* stats) {
  const RoundedRect expanded =
      ExpandedQueryRangeCircular(issuer.disk(), spec.w, spec.h);
  AnswerSet answers;
  index.Query(
      expanded.BoundingBox(),
      [&](const Rect& box, ObjectId id) {
        const Point s = box.Center();
        // Exact refinement: outside the rounded rectangle the dual range
        // cannot reach the disk (Lemma 1 for disks).
        if (!expanded.Contains(s)) return;
        const double pi = PointQualification(issuer, s, spec.w, spec.h);
        if (pi > 0.0) answers.push_back({id, pi});
      },
      stats);
  return answers;
}

AnswerSet EvaluateCIPQCircular(const RTree& index,
                               const UniformDiskPdf& issuer,
                               const RangeQuerySpec& spec,
                               IndexStats* stats) {
  const RoundedRect expanded =
      ExpandedQueryRangeCircular(issuer.disk(), spec.w, spec.h);
  // Lemma 5 with the disk's marginal quantiles: any point outside this
  // rectangle qualifies with probability ≤ Qp.
  const Rect threshold_filter =
      PExpandedQuery(issuer, spec.w, spec.h, spec.threshold);
  const Rect range = expanded.BoundingBox().Intersection(threshold_filter);
  AnswerSet answers;
  index.Query(
      range,
      [&](const Rect& box, ObjectId id) {
        const Point s = box.Center();
        if (!expanded.Contains(s)) return;
        const double pi = PointQualification(issuer, s, spec.w, spec.h);
        if (pi > 0.0 && pi >= spec.threshold) answers.push_back({id, pi});
      },
      stats);
  return answers;
}

AnswerSet EvaluateIUQCircular(const RTree& index,
                              const std::vector<UncertainObject>& objects,
                              const UniformDiskPdf& issuer,
                              const RangeQuerySpec& spec,
                              const EvalOptions& options,
                              IndexStats* stats) {
  const RoundedRect expanded =
      ExpandedQueryRangeCircular(issuer.disk(), spec.w, spec.h);
  AnswerSet answers;
  // The issuer is already a concrete pdf; per candidate one std::visit over
  // the object variant picks the monomorphized disk ⊗ object kernel.
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    index.Query(
        expanded.BoundingBox(),
        [&](const Rect& box, ObjectId idx) {
          if (!expanded.Intersects(box)) return;
          const UncertainObject& obj = objects[idx];
          // Per-candidate stream (see MixSeeds): traversal-order invariant.
          Rng rng(MixSeeds(options.mc_seed, obj.id()));
          const double pi = std::visit(
              [&](const auto& object_pdf) {
                return UncertainQualificationMCT(issuer, object_pdf, spec.w,
                                                 spec.h, options.mc_samples,
                                                 &rng);
              },
              obj.pdf_variant());
          if (pi > 0.0) answers.push_back({obj.id(), pi});
        },
        stats);
  } else {
    index.Query(
        expanded.BoundingBox(),
        [&](const Rect& box, ObjectId idx) {
          if (!expanded.Intersects(box)) return;
          const UncertainObject& obj = objects[idx];
          const double pi = std::visit(
              [&](const auto& object_pdf) {
                return QualifyPair(issuer, object_pdf, spec.w, spec.h,
                                   options.quadrature_order);
              },
              obj.pdf_variant());
          if (pi > 0.0) answers.push_back({obj.id(), pi});
        },
        stats);
  }
  return answers;
}

}  // namespace ilq
