#include "core/inn.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "geometry/polygon.h"

namespace ilq {

namespace {

// Nearest object id at one issuer position; ties broken by smaller id so
// the result is deterministic. Returns false when the index is empty.
bool NearestAt(const RTree& index, const Point& p, ObjectId* winner,
               IndexStats* stats) {
  // Ask for two neighbours so exact distance ties surface, then break by
  // id among the tied front-runners.
  const std::vector<RTree::Neighbor> nn = index.Nearest(p, 2, stats);
  if (nn.empty()) return false;
  *winner = nn[0].id;
  if (nn.size() > 1 && nn[1].distance == nn[0].distance) {
    *winner = std::min(nn[0].id, nn[1].id);
  }
  return true;
}

AnswerSet TallyToAnswers(const std::map<ObjectId, double>& mass) {
  AnswerSet answers;
  answers.reserve(mass.size());
  for (const auto& [id, p] : mass) {
    if (p > 0.0) answers.push_back({id, p});
  }
  return answers;
}

}  // namespace

AnswerSet EvaluateINN(const RTree& index, const UncertainObject& issuer,
                      const InnOptions& options, IndexStats* stats) {
  ILQ_CHECK(options.samples > 0, "INN needs at least one sample");
  if (index.size() == 0) return {};
  Rng rng(options.seed);
  std::map<ObjectId, double> hits;
  // pdf() resolves the variant with a std::visit; hoist it out of the
  // sampling loop.
  const UncertaintyPdf& pdf = issuer.pdf();
  for (size_t i = 0; i < options.samples; ++i) {
    ObjectId winner = 0;
    if (NearestAt(index, pdf.Sample(&rng), &winner, stats)) {
      hits[winner] += 1.0;
    }
  }
  for (auto& [id, count] : hits) {
    count /= static_cast<double>(options.samples);
  }
  return TallyToAnswers(hits);
}

AnswerSet EvaluateINNGrid(const RTree& index, const UncertainObject& issuer,
                          const InnOptions& options, IndexStats* stats) {
  ILQ_CHECK(options.grid_per_axis > 0, "grid_per_axis must be positive");
  if (index.size() == 0) return {};
  const Rect u0 = issuer.region();
  const size_t n = options.grid_per_axis;
  const double dx = u0.Width() / static_cast<double>(n);
  const double dy = u0.Height() / static_cast<double>(n);
  const double cell_area = dx * dy;
  std::map<ObjectId, double> mass;
  double total = 0.0;
  // pdf() resolves the variant with a std::visit; hoist it out of the
  // grid loop.
  const UncertaintyPdf& pdf = issuer.pdf();
  for (size_t i = 0; i < n; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    for (size_t j = 0; j < n; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      const Point p(x, y);
      const double weight = pdf.Density(p) * cell_area;
      if (weight <= 0.0) continue;
      ObjectId winner = 0;
      if (NearestAt(index, p, &winner, stats)) {
        mass[winner] += weight;
        total += weight;
      }
    }
  }
  // Normalize away the midpoint-rule discretization of the pdf so the
  // answer remains a probability distribution.
  if (total > 0.0) {
    for (auto& [id, p] : mass) p /= total;
  }
  return TallyToAnswers(mass);
}

AnswerSet EvaluateINNExactUniform(const RTree& index, const Rect& u0,
                                  IndexStats* stats) {
  ILQ_CHECK(!u0.IsEmpty() && u0.Area() > 0.0,
            "exact INN requires a non-degenerate issuer rectangle");
  if (index.size() == 0) return {};

  // Candidate bound: the nearest neighbour of U0's centre gives the radius
  // R = maxdist(U0, anchor); anywhere in U0 the true NN lies within
  // dist(x, anchor) ≤ R, so candidates are the objects within R of U0.
  const std::vector<RTree::Neighbor> anchor =
      index.Nearest(u0.Center(), 1, stats);
  ILQ_CHECK(!anchor.empty(), "non-empty index returned no neighbour");
  const Point a = anchor[0].box.Center();
  const Point corners[4] = {Point(u0.xmin, u0.ymin), Point(u0.xmax, u0.ymin),
                            Point(u0.xmax, u0.ymax),
                            Point(u0.xmin, u0.ymax)};
  double radius = 0.0;
  for (const Point& corner : corners) {
    radius = std::max(radius, corner.DistanceTo(a));
  }

  struct Candidate {
    ObjectId id;
    Point location;
  };
  std::vector<Candidate> candidates;
  index.Query(
      u0.Expanded(radius, radius),
      [&](const Rect& box, ObjectId id) {
        const Point s = box.Center();
        // Corner-rectangle expansion over-covers; keep only objects truly
        // within R of the rectangle.
        if (u0.MinDistanceTo(s) <= radius) candidates.push_back({id, s});
      },
      stats);

  // Each candidate's nearest-region is U0 clipped by the bisector
  // half-plane towards every other candidate:
  //   dist(x, Si) ≤ dist(x, Sj)  ⟺  2(Sj − Si)·x ≤ |Sj|² − |Si|².
  const ConvexPolygon box = ConvexPolygon::FromRect(u0);
  const double inv_area = 1.0 / u0.Area();
  AnswerSet answers;
  for (const Candidate& self : candidates) {
    ConvexPolygon cell = box;
    const double self_sq =
        self.location.x * self.location.x +
        self.location.y * self.location.y;
    for (const Candidate& other : candidates) {
      if (other.id == self.id) continue;
      const double nx = 2.0 * (other.location.x - self.location.x);
      const double ny = 2.0 * (other.location.y - self.location.y);
      if (nx == 0.0 && ny == 0.0) {
        // Exactly co-located competitor: the smaller id wins the tie so
        // probabilities still sum to 1.
        if (other.id < self.id) {
          cell = ConvexPolygon();
          break;
        }
        continue;
      }
      const double c = other.location.x * other.location.x +
                       other.location.y * other.location.y - self_sq;
      cell = cell.ClippedToHalfPlane(nx, ny, c);
      if (cell.size() < 3) break;
    }
    if (cell.size() >= 3) {
      const double pi = cell.Area() * inv_area;
      if (pi > 0.0) answers.push_back({self.id, pi});
    }
  }
  return answers;
}

}  // namespace ilq
