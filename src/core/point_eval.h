// Shared IPQ / C-IPQ candidate evaluation: Lemma 3 over an index range,
// with the batched analytic path (collect centers during the traversal,
// one std::visit, one MassInCenteredBatch pass) and the per-candidate
// Monte-Carlo path. IPQ and C-IPQ differ only in how they build the index
// range and in the probability filter, so both entry points delegate here.

#ifndef ILQ_CORE_POINT_EVAL_H_
#define ILQ_CORE_POINT_EVAL_H_

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "prob/pdf_variant.h"

namespace ilq {

/// Qualifies every candidate the index returns for \p range against the
/// issuer pdf (Lemma 3: mass inside the dual range centred at the
/// candidate). Emits answers in candidate order with
/// pi > 0 && pi >= \p min_probability — pass 0 for the unconstrained IPQ
/// filter (pi > 0), the query threshold for C-IPQ.
AnswerSet EvaluatePointCandidates(const RTree& index, const Rect& range,
                                  const PdfVariant& pdf,
                                  const RangeQuerySpec& spec,
                                  double min_probability,
                                  const EvalOptions& options,
                                  IndexStats* stats);

}  // namespace ilq

#endif  // ILQ_CORE_POINT_EVAL_H_
