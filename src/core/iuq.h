// Enhanced IUQ evaluation (§4): Minkowski-sum filtering on the R-tree
// (Lemma 1) + the duality-based Eq. 8 integral over Ui ∩ (R ⊕ U0)
// (Lemma 4), evaluated closed-form / separably / by quadrature depending on
// the pdfs involved.

#ifndef ILQ_CORE_IUQ_H_
#define ILQ_CORE_IUQ_H_

#include <vector>

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Evaluates an IUQ (Definition 4). \p index holds the objects' uncertainty
/// regions with ids that are indexes into \p objects. Returns every object
/// with non-zero qualification probability.
AnswerSet EvaluateIUQ(const RTree& index,
                      const std::vector<UncertainObject>& objects,
                      const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_IUQ_H_
