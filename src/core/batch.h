// Batch query evaluation (§6.1-style workloads): descriptors and results
// for fanning one workload's issuers across a thread pool via
// QueryEngine::RunBatch. The paper averages every data point over 500
// independent queries; those queries share immutable indexes and differ
// only in the issuer, which makes the batch embarrassingly parallel once
// the engine's const query paths are free of shared mutable state.

#ifndef ILQ_CORE_BATCH_H_
#define ILQ_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/cipq.h"
#include "core/ciuq.h"
#include "core/query.h"
#include "index/index_stats.h"

namespace ilq {

class QueryEngine;

/// \brief The eight query entry points RunBatch can drive.
///
/// The two C-IPQ filters are separate methods (Figure 11 compares them as
/// distinct series); the *Basic methods are the §3.3 sampling baselines.
enum class QueryMethod {
  kIpq,            ///< QueryEngine::Ipq (Minkowski expansion + duality)
  kIpqBasic,       ///< QueryEngine::IpqBasic (§3.3 baseline)
  kIuq,            ///< QueryEngine::Iuq (Eq. 8)
  kIuqBasic,       ///< QueryEngine::IuqBasic (§3.3 baseline, Eq. 4)
  kCipqPExpanded,  ///< QueryEngine::Cipq with CipqFilter::kPExpanded
  kCipqMinkowski,  ///< QueryEngine::Cipq with CipqFilter::kMinkowski
  kCiuqRTree,      ///< QueryEngine::CiuqRTree (Minkowski on plain R-tree)
  kCiuqPti,        ///< QueryEngine::CiuqPti (PTI + p-expanded-query)
};

/// Number of QueryMethod enumerators (sizes fixed per-method counter
/// arrays, e.g. ServeStats::per_method). Derived from the last enumerator;
/// AllQueryMethods() asserts the two stay in sync, so appending a method
/// without updating that list fails loudly at first use.
inline constexpr size_t kQueryMethodCount =
    static_cast<size_t>(QueryMethod::kCiuqPti) + 1;

/// Short stable name ("ipq", "cipq_pexp", ...) for logs and tables.
const char* QueryMethodName(QueryMethod method);

/// All eight methods, in declaration order (test/bench sweep helper).
const std::vector<QueryMethod>& AllQueryMethods();

/// \brief What every query in the batch evaluates: one range-query shape
/// shared by all issuers, plus the method-specific knobs.
struct BatchSpec {
  RangeQuerySpec query;    ///< shared (w, h, Qp)
  CiuqPruneConfig prune;   ///< strategies 1-3, used by kCiuqPti only

  BatchSpec() = default;
  explicit BatchSpec(const RangeQuerySpec& q,
                     const CiuqPruneConfig& p = CiuqPruneConfig{})
      : query(q), prune(p) {}
};

/// \brief Execution knobs for RunBatch.
struct BatchOptions {
  /// Worker threads evaluating queries. 1 = serial (runs inline on the
  /// calling thread); 0 = ThreadPool::DefaultThreadCount().
  size_t threads = 1;

  /// Issuers handed to a worker per grab; 0 picks ~8 chunks per thread.
  /// Chunking only affects scheduling — results are identical.
  size_t chunk = 0;

  /// When true, BatchResult carries per-query wall times (for p95 etc.).
  bool collect_timings = true;
};

/// \brief Per-issuer answers plus merged counters, in issuer order.
///
/// answers[i], per_query_stats[i] and query_ms[i] all belong to issuer i of
/// the input — deterministic regardless of thread count or chunking.
struct BatchResult {
  std::vector<AnswerSet> answers;        ///< one per issuer, input order
  std::vector<IndexStats> per_query_stats;  ///< one per issuer, input order
  std::vector<double> query_ms;  ///< per-query wall time (empty when
                                 ///< collect_timings is false)
  IndexStats total_stats;        ///< per-thread partials, IndexStats::Merge'd
  double wall_ms = 0.0;          ///< whole-batch wall-clock time
  size_t threads_used = 0;       ///< resolved thread count
};

/// Evaluates one query: dispatches \p method on \p engine for one issuer —
/// the single-query building block RunBatch and the serving layer
/// (serve/sharded_engine.h) share. Thread-safe under the engine's const
/// query guarantee.
AnswerSet RunQueryMethod(const QueryEngine& engine, QueryMethod method,
                         const UncertainObject& issuer, const BatchSpec& spec,
                         IndexStats* stats = nullptr);

/// Canonical answer order of every merged/replayed path: sorted by id
/// (probability bits break never-expected duplicate ids totally), exact
/// duplicates removed. ShardedEngine::Run, the remote Router (net/) and the
/// continuous-query replay path (continuous/) all finish with exactly this
/// call, which is what makes their answers bit-comparable.
void CanonicalizeAnswers(AnswerSet* answers);

/// True when \p method queries the point dataset (IPQ family); the IUQ /
/// C-IUQ family queries the uncertain dataset. Routing and candidate
/// prefetch pick the matching dataset/bounds.
bool QueryMethodUsesPoints(QueryMethod method);

}  // namespace ilq

#endif  // ILQ_CORE_BATCH_H_
