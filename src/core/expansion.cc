#include "core/expansion.h"

namespace ilq {

Rect PExpandedQuery(const UncertaintyPdf& issuer_pdf, double w, double h,
                    double p) {
  const PBound bound = PBound::FromPdf(issuer_pdf, p);
  return Rect(bound.l - w, bound.r + w, bound.b - h, bound.t + h);
}

Rect PExpandedQueryFromCatalog(const UCatalog& issuer_catalog, double w,
                               double h, double qp) {
  const PBound& bound = issuer_catalog.FloorBound(qp);
  return Rect(bound.l - w, bound.r + w, bound.b - h, bound.t + h);
}

}  // namespace ilq
