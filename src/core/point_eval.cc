#include "core/point_eval.h"

#include <variant>
#include <vector>

#include "core/duality.h"

namespace ilq {

AnswerSet EvaluatePointCandidates(const RTree& index, const Rect& range,
                                  const PdfVariant& pdf,
                                  const RangeQuerySpec& spec,
                                  double min_probability,
                                  const EvalOptions& options,
                                  IndexStats* stats) {
  AnswerSet answers;
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    // One std::visit for the whole query; the monomorphized sampling loop
    // runs per candidate as the index streams them, each candidate on its
    // own (mc_seed, id)-derived stream so the estimate is independent of
    // traversal order (see MixSeeds).
    std::visit(
        [&](const auto& issuer_pdf) {
          index.Query(
              range,
              [&](const Rect& box, ObjectId id) {
                Rng rng(MixSeeds(options.mc_seed, id));
                const double pi =
                    PointQualificationMC(issuer_pdf, box.Center(), spec.w,
                                         spec.h, options.mc_samples, &rng);
                if (pi > 0.0 && pi >= min_probability) {
                  answers.push_back({id, pi});
                }
              },
              stats);
        },
        pdf);
  } else {
    // Lemma 3 batched: collect the candidate locations during the index
    // traversal, then qualify them all with one std::visit and the
    // alternative's tight MassInCenteredBatch loop (every dual range shares
    // the query half-extents). Candidate order — and hence answer order —
    // matches the per-candidate evaluation exactly.
    std::vector<ObjectId> ids;
    std::vector<Point> centers;
    index.Query(
        range,
        [&](const Rect& box, ObjectId id) {
          ids.push_back(id);
          centers.push_back(box.Center());
        },
        stats);
    std::vector<double> mass(centers.size());
    MassInCenteredBatch(pdf, centers, spec.w, spec.h, mass);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (mass[i] > 0.0 && mass[i] >= min_probability) {
        answers.push_back({ids[i], mass[i]});
      }
    }
  }
  return answers;
}

}  // namespace ilq
