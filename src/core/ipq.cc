#include "core/ipq.h"

#include "core/expansion.h"
#include "core/point_eval.h"

namespace ilq {

AnswerSet EvaluateIPQ(const RTree& index, const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  // min_probability = 0: the unconstrained pi > 0 filter.
  return EvaluatePointCandidates(index, expanded, issuer.pdf_variant(), spec,
                                 /*min_probability=*/0.0, options, stats);
}

}  // namespace ilq
