#include "core/ipq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateIPQ(const RTree& index, const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  Rng rng(options.mc_seed);
  index.Query(
      expanded,
      [&](const Rect& box, ObjectId id) {
        const Point s = box.Center();
        const double pi =
            options.kernel == ProbabilityKernel::kMonteCarlo
                ? PointQualificationMC(issuer.pdf(), s, spec.w, spec.h,
                                       options.mc_samples, &rng)
                : PointQualification(issuer.pdf(), s, spec.w, spec.h);
        if (pi > 0.0) answers.push_back({id, pi});
      },
      stats);
  return answers;
}

}  // namespace ilq
