#include "core/ipq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateIPQ(const RTree& index, const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  const UncertaintyPdf& pdf = issuer.pdf();
  // The kernel choice is hoisted out of the candidate loop: each branch
  // instantiates its own RTree::Query visitor, so the per-candidate path is
  // branch- and indirection-free, and the analytic path skips the Rng.
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    Rng rng(options.mc_seed);
    index.Query(
        expanded,
        [&](const Rect& box, ObjectId id) {
          const double pi = PointQualificationMC(
              pdf, box.Center(), spec.w, spec.h, options.mc_samples, &rng);
          if (pi > 0.0) answers.push_back({id, pi});
        },
        stats);
  } else {
    index.Query(
        expanded,
        [&](const Rect& box, ObjectId id) {
          const double pi =
              PointQualification(pdf, box.Center(), spec.w, spec.h);
          if (pi > 0.0) answers.push_back({id, pi});
        },
        stats);
  }
  return answers;
}

}  // namespace ilq
