// Enhanced IPQ evaluation (§4): Minkowski-sum filtering on the R-tree
// (Lemma 1) + query–data duality for the qualification probability
// (Lemma 3 / Eq. 5; Eq. 6's area ratio for uniform issuers).

#ifndef ILQ_CORE_IPQ_H_
#define ILQ_CORE_IPQ_H_

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Evaluates an IPQ (Definition 3) over point objects indexed in \p index
/// (degenerate rectangles; the entry box is the point's location). Returns
/// every object with non-zero qualification probability.
AnswerSet EvaluateIPQ(const RTree& index, const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_IPQ_H_
