#include "core/basic_eval.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "core/expansion.h"

namespace ilq {

namespace {

// Midpoint-rule sampling of the issuer's uncertainty region: positions,
// integration weights f0(p) * cell_area, and the range query centred at
// each sample. The ranges are hoisted here — built once per query — so the
// per-object loops below only test containment / mass instead of
// re-constructing per_axis² rectangles per candidate. For a uniform issuer
// the weights sum to exactly 1.
struct IssuerSamples {
  std::vector<Point> positions;
  std::vector<double> weights;
  std::vector<Rect> ranges;  ///< Rect::Centered(position, w, h)
};

IssuerSamples SampleIssuerGrid(const UncertaintyPdf& pdf, size_t per_axis,
                               const RangeQuerySpec& spec) {
  ILQ_CHECK(per_axis > 0, "grid_per_axis must be positive");
  const Rect u0 = pdf.bounds();
  const double dx = u0.Width() / static_cast<double>(per_axis);
  const double dy = u0.Height() / static_cast<double>(per_axis);
  const double cell_area = dx * dy;
  IssuerSamples samples;
  samples.positions.reserve(per_axis * per_axis);
  samples.weights.reserve(per_axis * per_axis);
  samples.ranges.reserve(per_axis * per_axis);
  for (size_t i = 0; i < per_axis; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    for (size_t j = 0; j < per_axis; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      const Point p(x, y);
      const double weight = pdf.Density(p) * cell_area;
      if (weight > 0.0) {
        samples.positions.push_back(p);
        samples.weights.push_back(weight);
        samples.ranges.push_back(Rect::Centered(p, spec.w, spec.h));
      }
    }
  }
  return samples;
}

// Midpoint weights near region boundaries can overshoot, so the summed
// qualification probability may land slightly above 1; clamp to [0, 1].
double ClampProbability(double pi) {
  return std::clamp(pi, 0.0, 1.0);
}

// Both evaluation paths (index traversal and linear scan) return answers
// sorted by object id, so `use_index` cannot change the ordering.
void SortAnswers(AnswerSet* answers) {
  std::sort(answers->begin(), answers->end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              return a.id < b.id;
            });
}

}  // namespace

AnswerSet EvaluateIPQBasic(const RTree& index,
                           const std::vector<PointObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf(), options.grid_per_axis, spec);
  AnswerSet answers;

  auto evaluate = [&](const Point& location, ObjectId id) {
    // Eq. 2: integrate b_i(x, y) f0(x, y) over the sampled issuer grid. The
    // boolean is evaluated against the pre-built range at every sample.
    double pi = 0.0;
    for (size_t k = 0; k < samples.ranges.size(); ++k) {
      if (samples.ranges[k].Contains(location)) {
        pi += samples.weights[k];
      }
    }
    if (pi > 0.0) answers.push_back({id, ClampProbability(pi)});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(
        expanded,
        [&](const Rect& box, ObjectId id) { evaluate(box.Center(), id); },
        stats);
  } else {
    for (const PointObject& s : objects) evaluate(s.location, s.id);
  }
  SortAnswers(&answers);
  return answers;
}

AnswerSet EvaluateIUQBasic(const RTree& index,
                           const std::vector<UncertainObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf(), options.grid_per_axis, spec);
  AnswerSet answers;

  auto evaluate = [&](size_t object_index) {
    const UncertainObject& obj = objects[object_index];
    const UncertaintyPdf& pdf = obj.pdf();
    // Eq. 4: at every sampled issuer position, the inner Eq. 3 integral is
    // the object's probability mass inside the range query there.
    double pi = 0.0;
    for (size_t k = 0; k < samples.ranges.size(); ++k) {
      pi += samples.weights[k] * pdf.MassIn(samples.ranges[k]);
    }
    if (pi > 0.0) answers.push_back({obj.id(), ClampProbability(pi)});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(expanded,
                [&](const Rect&, ObjectId idx) { evaluate(idx); }, stats);
  } else {
    for (size_t i = 0; i < objects.size(); ++i) evaluate(i);
  }
  SortAnswers(&answers);
  return answers;
}

}  // namespace ilq
