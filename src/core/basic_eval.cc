#include "core/basic_eval.h"

#include <algorithm>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "core/expansion.h"
#include "prob/pdf_variant.h"
#include "simd/aligned.h"
#include "simd/qual_kernels.h"
#include "simd/simd_policy.h"

namespace ilq {

namespace {

// Midpoint-rule sampling of the issuer's uncertainty region: positions,
// integration weights f0(p) * cell_area, and the range query centred at
// each sample. The ranges are hoisted here — built once per query — so the
// per-object loops below only test containment / mass instead of
// re-constructing per_axis² rectangles per candidate. For a uniform issuer
// the weights sum to exactly 1.
struct IssuerSamples {
  std::vector<Point> positions;
  std::vector<double> weights;
  std::vector<Rect> ranges;  ///< Rect::Centered(position, w, h)
};

IssuerSamples SampleIssuerGrid(const PdfVariant& pdf, size_t per_axis,
                               const RangeQuerySpec& spec) {
  ILQ_CHECK(per_axis > 0, "grid_per_axis must be positive");
  const Rect u0 = PdfBounds(pdf);
  const double dx = u0.Width() / static_cast<double>(per_axis);
  const double dy = u0.Height() / static_cast<double>(per_axis);
  const double cell_area = dx * dy;
  // Densities for the whole grid in one batched call (one std::visit, one
  // tight loop), then keep only the positive-weight samples.
  std::vector<Point> grid;
  grid.reserve(per_axis * per_axis);
  for (size_t i = 0; i < per_axis; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    for (size_t j = 0; j < per_axis; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      grid.emplace_back(x, y);
    }
  }
  std::vector<double> density(grid.size());
  DensityBatch(pdf, grid, density);
  IssuerSamples samples;
  samples.positions.reserve(grid.size());
  samples.weights.reserve(grid.size());
  samples.ranges.reserve(grid.size());
  for (size_t k = 0; k < grid.size(); ++k) {
    const double weight = density[k] * cell_area;
    if (weight > 0.0) {
      samples.positions.push_back(grid[k]);
      samples.weights.push_back(weight);
      samples.ranges.push_back(Rect::Centered(grid[k], spec.w, spec.h));
    }
  }
  return samples;
}

// Midpoint weights near region boundaries can overshoot, so the summed
// qualification probability may land slightly above 1; clamp to [0, 1].
double ClampProbability(double pi) {
  return std::clamp(pi, 0.0, 1.0);
}

// Both evaluation paths (index traversal and linear scan) return answers
// sorted by object id, so `use_index` cannot change the ordering.
void SortAnswers(AnswerSet* answers) {
  std::sort(answers->begin(), answers->end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              return a.id < b.id;
            });
}

}  // namespace

AnswerSet EvaluateIPQBasic(const RTree& index,
                           const std::vector<PointObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf_variant(), options.grid_per_axis, spec);
  AnswerSet answers;

  auto evaluate = [&](const Point& location, ObjectId id) {
    // Eq. 2: integrate b_i(x, y) f0(x, y) over the sampled issuer grid. The
    // boolean is evaluated against every pre-built range in one pass; the
    // mask-times-weight form adds 0.0 for misses (bit-identical to the
    // conditional add, since the weights are finite and positive) and keeps
    // the loop branch-free so it vectorizes.
    double pi = 0.0;
    const size_t n = samples.ranges.size();
    const Rect* ranges = samples.ranges.data();
    const double* weights = samples.weights.data();
    for (size_t k = 0; k < n; ++k) {
      pi += ranges[k].Contains(location) ? weights[k] : 0.0;
    }
    if (pi > 0.0) answers.push_back({id, ClampProbability(pi)});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(
        expanded,
        [&](const Rect& box, ObjectId id) { evaluate(box.Center(), id); },
        stats);
  } else {
    for (const PointObject& s : objects) evaluate(s.location, s.id);
  }
  SortAnswers(&answers);
  return answers;
}

AnswerSet EvaluateIUQBasic(const RTree& index,
                           const std::vector<UncertainObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf_variant(), options.grid_per_axis, spec);
  AnswerSet answers;

  // Scratch reused across candidates: the per-object masses of every
  // sampled range (cache-aligned for the fast-variant dot kernel below).
  simd::AlignedVector<double> masses(samples.ranges.size());
  const bool fast_dot =
      simd::ActiveKernelVariant() == simd::KernelVariant::kFast;

  auto evaluate = [&](size_t object_index) {
    const UncertainObject& obj = objects[object_index];
    // Eq. 4: at every sampled issuer position, the inner Eq. 3 integral is
    // the object's probability mass inside the range query there. One
    // std::visit per object, then the monomorphized batch kernel over the
    // whole grid (all ranges share the query half-extents). In strict mode
    // the weighted sum accumulates in the same sample order as the scalar
    // loop it replaced; the fast variant hands it to the reassociated FMA
    // dot kernel instead.
    MassInCenteredBatch(obj.pdf_variant(), samples.positions, spec.w, spec.h,
                        masses);
    double pi = 0.0;
    const size_t n = samples.ranges.size();
    if (fast_dot) {
      pi = simd::ActiveKernels().dot(samples.weights.data(), masses.data(),
                                     n);
    } else {
      for (size_t k = 0; k < n; ++k) {
        pi += samples.weights[k] * masses[k];
      }
    }
    if (pi > 0.0) answers.push_back({obj.id(), ClampProbability(pi)});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(expanded,
                [&](const Rect&, ObjectId idx) { evaluate(idx); }, stats);
  } else {
    for (size_t i = 0; i < objects.size(); ++i) evaluate(i);
  }
  SortAnswers(&answers);
  return answers;
}

}  // namespace ilq
