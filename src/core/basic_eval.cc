#include "core/basic_eval.h"

#include <vector>

#include "common/logging.h"
#include "core/expansion.h"

namespace ilq {

namespace {

// Midpoint-rule sampling of the issuer's uncertainty region: positions and
// integration weights f0(p) * cell_area. For a uniform issuer the weights
// sum to exactly 1.
struct IssuerSamples {
  std::vector<Point> positions;
  std::vector<double> weights;
};

IssuerSamples SampleIssuerGrid(const UncertaintyPdf& pdf, size_t per_axis) {
  ILQ_CHECK(per_axis > 0, "grid_per_axis must be positive");
  const Rect u0 = pdf.bounds();
  const double dx = u0.Width() / static_cast<double>(per_axis);
  const double dy = u0.Height() / static_cast<double>(per_axis);
  const double cell_area = dx * dy;
  IssuerSamples samples;
  samples.positions.reserve(per_axis * per_axis);
  samples.weights.reserve(per_axis * per_axis);
  for (size_t i = 0; i < per_axis; ++i) {
    const double x = u0.xmin + (static_cast<double>(i) + 0.5) * dx;
    for (size_t j = 0; j < per_axis; ++j) {
      const double y = u0.ymin + (static_cast<double>(j) + 0.5) * dy;
      const Point p(x, y);
      const double weight = pdf.Density(p) * cell_area;
      if (weight > 0.0) {
        samples.positions.push_back(p);
        samples.weights.push_back(weight);
      }
    }
  }
  return samples;
}

}  // namespace

AnswerSet EvaluateIPQBasic(const RTree& index,
                           const std::vector<PointObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf(), options.grid_per_axis);
  AnswerSet answers;

  auto evaluate = [&](const Point& location, ObjectId id) {
    // Eq. 2: integrate b_i(x, y) f0(x, y) over the sampled issuer grid. The
    // boolean is evaluated by forming the range query at every sample.
    double pi = 0.0;
    for (size_t k = 0; k < samples.positions.size(); ++k) {
      if (Rect::Centered(samples.positions[k], spec.w, spec.h)
              .Contains(location)) {
        pi += samples.weights[k];
      }
    }
    if (pi > 0.0) answers.push_back({id, pi});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(
        expanded,
        [&](const Rect& box, ObjectId id) { evaluate(box.Center(), id); },
        stats);
  } else {
    for (const PointObject& s : objects) evaluate(s.location, s.id);
  }
  return answers;
}

AnswerSet EvaluateIUQBasic(const RTree& index,
                           const std::vector<UncertainObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats) {
  const IssuerSamples samples =
      SampleIssuerGrid(issuer.pdf(), options.grid_per_axis);
  AnswerSet answers;

  auto evaluate = [&](size_t object_index) {
    const UncertainObject& obj = objects[object_index];
    // Eq. 4: at every sampled issuer position, the inner Eq. 3 integral is
    // the object's probability mass inside the range query there.
    double pi = 0.0;
    for (size_t k = 0; k < samples.positions.size(); ++k) {
      const double inner = obj.pdf().MassIn(
          Rect::Centered(samples.positions[k], spec.w, spec.h));
      pi += samples.weights[k] * inner;
    }
    if (pi > 0.0) answers.push_back({obj.id(), pi});
  };

  if (options.use_index) {
    const Rect expanded =
        MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
    index.Query(expanded,
                [&](const Rect&, ObjectId idx) { evaluate(idx); }, stats);
  } else {
    for (size_t i = 0; i < objects.size(); ++i) evaluate(i);
  }
  return answers;
}

}  // namespace ilq
