// Constrained IPQ evaluation (§5.1, Definition 5): only answers with
// qualification probability ≥ Qp are returned. Two filtering modes are
// provided — the Minkowski sum alone (the §4 filter, used as the baseline
// in Figure 11) and the p-expanded-query of Lemma 5, which shrinks with Qp
// and prunes candidates the Minkowski sum cannot.
//
// Boundary semantics: following the paper's Lemma 5 argument, the
// p-expanded filter may exclude objects whose probability equals Qp
// *exactly* (a measure-zero event for continuous pdfs); surviving
// candidates are kept when pi ≥ Qp and pi > 0.

#ifndef ILQ_CORE_CIPQ_H_
#define ILQ_CORE_CIPQ_H_

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Candidate filter used by C-IPQ.
enum class CipqFilter {
  /// R ⊕ U0 (Lemma 1) — ignores the threshold.
  kMinkowski,
  /// Qp-expanded-query (Lemma 5) — uses the issuer's U-catalog when
  /// present (largest catalogued M ≤ Qp, conservative per §5.1), or the
  /// exact quantile-based construction otherwise.
  kPExpanded,
};

/// Evaluates a C-IPQ over point objects indexed in \p index.
AnswerSet EvaluateCIPQ(const RTree& index, const UncertainObject& issuer,
                       const RangeQuerySpec& spec, CipqFilter filter,
                       const EvalOptions& options,
                       IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_CIPQ_H_
