#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/ipq.h"
#include "core/iuq.h"
#include "object/ucatalog.h"

namespace ilq {
namespace {

// Keeps both R-trees and the PTI in lock-step with the object vectors
// while ApplyCatalogUpdates mutates the working snapshot. The uncertain
// structures are keyed by *position*, so the swap-erase relocation hook
// re-keys the moved element. All mutations hit the private pre-publish
// snapshot only.
class IndexMaintenance : public CatalogListener {
 public:
  explicit IndexMaintenance(QueryEngine::Snapshot* snap) : snap_(snap) {}

  bool uncertain_ops() const { return uncertain_ops_; }

  void PointInserted(const PointObject& object) override {
    snap_->point_index.Insert(Rect::AtPoint(object.location), object.id);
  }
  void PointErased(const PointObject& object) override {
    snap_->point_index.Remove(Rect::AtPoint(object.location), object.id);
  }
  void UncertainInserted(uint32_t pos,
                         const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Insert(object.region(), pos);
    if (snap_->pti.has_value()) snap_->pti->Insert(object.region(), pos);
  }
  void UncertainErased(uint32_t pos,
                       const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Remove(object.region(), pos);
    if (snap_->pti.has_value()) snap_->pti->Remove(object.region(), pos);
  }
  void UncertainRelocated(uint32_t from, uint32_t to,
                          const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Remove(object.region(), from);
    snap_->uncertain_index.Insert(object.region(), to);
    if (snap_->pti.has_value()) {
      snap_->pti->Remove(object.region(), from);
      snap_->pti->Insert(object.region(), to);
    }
  }

 private:
  QueryEngine::Snapshot* snap_;
  bool uncertain_ops_ = false;
};

}  // namespace

QueryEngine::QueryEngine(EngineConfig config, SnapshotPtr snapshot)
    : config_(std::move(config)), control_(std::make_unique<Control>()) {
  control_->snap.store(std::move(snapshot), std::memory_order_release);
}

QueryEngine::SnapshotPtr QueryEngine::snapshot() const {
  return control_->snap.load(std::memory_order_acquire);
}

Result<QueryEngine> QueryEngine::Build(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    EngineConfig config) {
  if (config.catalog_values.empty()) {
    config.catalog_values = UCatalog::EvenlySpacedValues(11);
  }

  RTreeOptions point_options;
  point_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> point_items;
  point_items.reserve(points.size());
  for (const PointObject& s : points) {
    point_items.push_back({Rect::AtPoint(s.location), s.id});
  }
  Result<RTree> point_index =
      RTree::BulkLoad(point_options, std::move(point_items));
  if (!point_index.ok()) return point_index.status();

  // U-catalogs must exist before the PTI is built.
  for (UncertainObject& obj : uncertains) {
    ILQ_RETURN_NOT_OK(obj.BuildCatalog(config.catalog_values));
  }

  RTreeOptions uncertain_options;
  uncertain_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> uncertain_items;
  uncertain_items.reserve(uncertains.size());
  for (size_t i = 0; i < uncertains.size(); ++i) {
    uncertain_items.push_back(
        {uncertains[i].region(), static_cast<ObjectId>(i)});
  }
  Result<RTree> uncertain_index =
      RTree::BulkLoad(uncertain_options, std::move(uncertain_items));
  if (!uncertain_index.ok()) return uncertain_index.status();

  std::optional<PTI> pti;
  if (!uncertains.empty()) {
    Result<PTI> built =
        PTI::Build(PTIOptions(config.page_size_bytes,
                              config.catalog_values.size()),
                   uncertains);
    if (!built.ok()) return built.status();
    pti = std::move(built).ValueOrDie();
  }

  auto snap = std::make_shared<Snapshot>(
      Snapshot{MakeCatalogSnapshot(std::move(points), std::move(uncertains)),
               std::move(point_index).ValueOrDie(),
               std::move(uncertain_index).ValueOrDie(), std::move(pti)});
  return QueryEngine(std::move(config), std::move(snap));
}

Status QueryEngine::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(control_->writer_mu);
  const SnapshotPtr prev = control_->snap.load(std::memory_order_acquire);

  // Copy the derived structures; the catalog step below produces the new
  // object vectors itself. Everything here is private until the store.
  auto next = std::make_shared<Snapshot>(
      Snapshot{prev->catalog, prev->point_index, prev->uncertain_index,
               prev->pti});

  IndexMaintenance maintenance(next.get());
  Result<CatalogSnapshotPtr> applied = ApplyCatalogUpdates(
      *prev->catalog, batch, config_.catalog_values, &maintenance);
  if (!applied.ok()) return applied.status();
  next->catalog = std::move(applied).ValueOrDie();

  // PTI policy: drop it when the uncertain set emptied; bulk-(re)build when
  // absent or degraded past the threshold; otherwise refresh the node
  // catalogs bottom-up (they are stale after any structural change).
  const std::vector<UncertainObject>& uncertains = next->catalog->uncertains;
  if (uncertains.empty()) {
    next->pti.reset();
  } else if (maintenance.uncertain_ops() || !next->pti.has_value()) {
    const size_t threshold = std::max(
        config_.pti_rebuild_min_updates,
        static_cast<size_t>(config_.pti_rebuild_fraction *
                            static_cast<double>(uncertains.size())));
    const bool rebuild = !next->pti.has_value() ||
                         next->pti->updates_since_build() > threshold;
    if (rebuild) {
      Result<PTI> built =
          PTI::Build(PTIOptions(config_.page_size_bytes,
                                config_.catalog_values.size()),
                     uncertains);
      if (!built.ok()) return built.status();
      next->pti = std::move(built).ValueOrDie();
      control_->pti_rebuilds.fetch_add(1, std::memory_order_relaxed);
    } else {
      ILQ_RETURN_NOT_OK(next->pti->RefreshCatalogs(uncertains));
      control_->pti_refreshes.fetch_add(1, std::memory_order_relaxed);
    }
  }

  control_->snap.store(std::move(next), std::memory_order_release);
  control_->batches.fetch_add(1, std::memory_order_relaxed);
  control_->ops.fetch_add(batch.size(), std::memory_order_relaxed);
  return Status::OK();
}

UpdateStats QueryEngine::update_stats() const {
  UpdateStats stats;
  stats.batches = control_->batches.load(std::memory_order_relaxed);
  stats.ops = control_->ops.load(std::memory_order_relaxed);
  stats.pti_rebuilds =
      control_->pti_rebuilds.load(std::memory_order_relaxed);
  stats.pti_refreshes =
      control_->pti_refreshes.load(std::memory_order_relaxed);
  return stats;
}

const std::vector<PointObject>& QueryEngine::points() const {
  return control_->snap.load(std::memory_order_acquire)->catalog->points;
}

const std::vector<UncertainObject>& QueryEngine::uncertains() const {
  return control_->snap.load(std::memory_order_acquire)->catalog->uncertains;
}

const RTree& QueryEngine::point_index() const {
  return control_->snap.load(std::memory_order_acquire)->point_index;
}

const RTree& QueryEngine::uncertain_index() const {
  return control_->snap.load(std::memory_order_acquire)->uncertain_index;
}

const PTI* QueryEngine::pti() const {
  const Snapshot& snap =
      *control_->snap.load(std::memory_order_acquire);
  return snap.pti.has_value() ? &*snap.pti : nullptr;
}

AnswerSet QueryEngine::Ipq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIPQ(snap->point_index, issuer, spec, config_.eval, stats);
}

AnswerSet QueryEngine::IpqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIPQBasic(snap->point_index, snap->catalog->points, issuer,
                          spec, config_.basic, stats);
}

AnswerSet QueryEngine::Iuq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIUQ(snap->uncertain_index, snap->catalog->uncertains,
                     issuer, spec, config_.eval, stats);
}

AnswerSet QueryEngine::IuqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIUQBasic(snap->uncertain_index, snap->catalog->uncertains,
                          issuer, spec, config_.basic, stats);
}

AnswerSet QueryEngine::Cipq(const UncertainObject& issuer,
                            const RangeQuerySpec& spec, CipqFilter filter,
                            IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateCIPQ(snap->point_index, issuer, spec, filter, config_.eval,
                      stats);
}

AnswerSet QueryEngine::CiuqRTree(const UncertainObject& issuer,
                                 const RangeQuerySpec& spec,
                                 IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateCIUQRTree(snap->uncertain_index,
                           snap->catalog->uncertains, issuer, spec,
                           config_.eval, stats);
}

AnswerSet QueryEngine::CiuqPti(const UncertainObject& issuer,
                               const RangeQuerySpec& spec,
                               const CiuqPruneConfig& prune,
                               IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  if (!snap->pti.has_value()) return {};
  return EvaluateCIUQPTI(*snap->pti, snap->catalog->uncertains, issuer,
                         spec, config_.eval, prune, stats);
}

Result<UncertainObject> QueryEngine::MakeIssuer(
    std::unique_ptr<UncertaintyPdf> pdf) const {
  if (pdf == nullptr) {
    return Status::InvalidArgument("issuer pdf must not be null");
  }
  UncertainObject issuer(/*id=*/0, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(config_.catalog_values));
  return issuer;
}

}  // namespace ilq
