#include "core/engine.h"

#include "common/logging.h"
#include "core/ipq.h"
#include "core/iuq.h"
#include "object/ucatalog.h"

namespace ilq {

Result<QueryEngine> QueryEngine::Build(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    EngineConfig config) {
  if (config.catalog_values.empty()) {
    config.catalog_values = UCatalog::EvenlySpacedValues(11);
  }

  RTreeOptions point_options;
  point_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> point_items;
  point_items.reserve(points.size());
  for (const PointObject& s : points) {
    point_items.push_back({Rect::AtPoint(s.location), s.id});
  }
  Result<RTree> point_index =
      RTree::BulkLoad(point_options, std::move(point_items));
  if (!point_index.ok()) return point_index.status();

  // U-catalogs must exist before the PTI is built.
  for (UncertainObject& obj : uncertains) {
    ILQ_RETURN_NOT_OK(obj.BuildCatalog(config.catalog_values));
  }

  RTreeOptions uncertain_options;
  uncertain_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> uncertain_items;
  uncertain_items.reserve(uncertains.size());
  for (size_t i = 0; i < uncertains.size(); ++i) {
    uncertain_items.push_back(
        {uncertains[i].region(), static_cast<ObjectId>(i)});
  }
  Result<RTree> uncertain_index =
      RTree::BulkLoad(uncertain_options, std::move(uncertain_items));
  if (!uncertain_index.ok()) return uncertain_index.status();

  std::optional<PTI> pti;
  if (!uncertains.empty()) {
    Result<PTI> built =
        PTI::Build(PTIOptions(config.page_size_bytes,
                              config.catalog_values.size()),
                   uncertains);
    if (!built.ok()) return built.status();
    pti = std::move(built).ValueOrDie();
  }

  return QueryEngine(std::move(points), std::move(uncertains),
                     std::move(config), std::move(point_index).ValueOrDie(),
                     std::move(uncertain_index).ValueOrDie(),
                     std::move(pti));
}

AnswerSet QueryEngine::Ipq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  return EvaluateIPQ(point_index_, issuer, spec, config_.eval, stats);
}

AnswerSet QueryEngine::IpqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  return EvaluateIPQBasic(point_index_, points_, issuer, spec, config_.basic,
                          stats);
}

AnswerSet QueryEngine::Iuq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  return EvaluateIUQ(uncertain_index_, uncertains_, issuer, spec,
                     config_.eval, stats);
}

AnswerSet QueryEngine::IuqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  return EvaluateIUQBasic(uncertain_index_, uncertains_, issuer, spec,
                          config_.basic, stats);
}

AnswerSet QueryEngine::Cipq(const UncertainObject& issuer,
                            const RangeQuerySpec& spec, CipqFilter filter,
                            IndexStats* stats) const {
  return EvaluateCIPQ(point_index_, issuer, spec, filter, config_.eval,
                      stats);
}

AnswerSet QueryEngine::CiuqRTree(const UncertainObject& issuer,
                                 const RangeQuerySpec& spec,
                                 IndexStats* stats) const {
  return EvaluateCIUQRTree(uncertain_index_, uncertains_, issuer, spec,
                           config_.eval, stats);
}

AnswerSet QueryEngine::CiuqPti(const UncertainObject& issuer,
                               const RangeQuerySpec& spec,
                               const CiuqPruneConfig& prune,
                               IndexStats* stats) const {
  if (!pti_.has_value()) return {};
  return EvaluateCIUQPTI(*pti_, uncertains_, issuer, spec, config_.eval,
                         prune, stats);
}

Result<UncertainObject> QueryEngine::MakeIssuer(
    std::unique_ptr<UncertaintyPdf> pdf) const {
  if (pdf == nullptr) {
    return Status::InvalidArgument("issuer pdf must not be null");
  }
  UncertainObject issuer(/*id=*/0, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(config_.catalog_values));
  return issuer;
}

}  // namespace ilq
