#include "core/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "core/ipq.h"
#include "core/iuq.h"
#include "object/ucatalog.h"

namespace ilq {
namespace {

// Cross-checks one mounted index file against the geometry the config
// would have built it with, and against the catalog it is supposed to
// serve. A stale or mismatched file fails here instead of silently
// answering with different fanout (which would break node-access parity)
// or for a different object set.
Status CheckMountedIndex(const RTree& tree, const RTreeOptions& options,
                         size_t expected_items, const char* what) {
  if (tree.page_size_bytes() != options.page_size_bytes) {
    return Status::FailedPrecondition(
        std::string(what) + " index file has page size " +
        std::to_string(tree.page_size_bytes()) + ", config wants " +
        std::to_string(options.page_size_bytes));
  }
  if (tree.extra_entry_bytes() != options.extra_entry_bytes) {
    return Status::FailedPrecondition(
        std::string(what) + " index file charges " +
        std::to_string(tree.extra_entry_bytes()) +
        " extra bytes per entry, config wants " +
        std::to_string(options.extra_entry_bytes));
  }
  if (tree.size() > 0 && tree.max_entries() != MaxEntriesForPage(options)) {
    return Status::FailedPrecondition(
        std::string(what) + " index file has fanout " +
        std::to_string(tree.max_entries()) + ", config derives " +
        std::to_string(MaxEntriesForPage(options)));
  }
  if (tree.size() != expected_items) {
    return Status::FailedPrecondition(
        std::string(what) + " index file holds " +
        std::to_string(tree.size()) + " items but the catalog has " +
        std::to_string(expected_items));
  }
  return Status::OK();
}

// Keeps both R-trees and the PTI in lock-step with the object vectors
// while ApplyCatalogUpdates mutates the working snapshot. The uncertain
// structures are keyed by *position*, so the swap-erase relocation hook
// re-keys the moved element. All mutations hit the private pre-publish
// snapshot only.
class IndexMaintenance : public CatalogListener {
 public:
  explicit IndexMaintenance(QueryEngine::Snapshot* snap) : snap_(snap) {}

  bool uncertain_ops() const { return uncertain_ops_; }

  void PointInserted(const PointObject& object) override {
    snap_->point_index.Insert(Rect::AtPoint(object.location), object.id);
  }
  void PointErased(const PointObject& object) override {
    snap_->point_index.Remove(Rect::AtPoint(object.location), object.id);
  }
  void UncertainInserted(uint32_t pos,
                         const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Insert(object.region(), pos);
    if (snap_->pti.has_value()) snap_->pti->Insert(object.region(), pos);
  }
  void UncertainErased(uint32_t pos,
                       const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Remove(object.region(), pos);
    if (snap_->pti.has_value()) snap_->pti->Remove(object.region(), pos);
  }
  void UncertainRelocated(uint32_t from, uint32_t to,
                          const UncertainObject& object) override {
    uncertain_ops_ = true;
    snap_->uncertain_index.Remove(object.region(), from);
    snap_->uncertain_index.Insert(object.region(), to);
    if (snap_->pti.has_value()) {
      snap_->pti->Remove(object.region(), from);
      snap_->pti->Insert(object.region(), to);
    }
  }

 private:
  QueryEngine::Snapshot* snap_;
  bool uncertain_ops_ = false;
};

}  // namespace

QueryEngine::QueryEngine(EngineConfig config, SnapshotPtr snapshot)
    : config_(std::move(config)), control_(std::make_unique<Control>()) {
  control_->snap.store(std::move(snapshot), std::memory_order_release);
}

QueryEngine::SnapshotPtr QueryEngine::snapshot() const {
  return control_->snap.load(std::memory_order_acquire);
}

Result<QueryEngine> QueryEngine::Build(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    EngineConfig config) {
  if (config.catalog_values.empty()) {
    config.catalog_values = UCatalog::EvenlySpacedValues(11);
  }
  // Process-global SIMD policy (see the EngineConfig field docs).
  if (config.simd_level) simd::SetActiveSimdLevel(*config.simd_level);
  if (config.kernel_variant) {
    simd::SetActiveKernelVariant(*config.kernel_variant);
  }

  RTreeOptions point_options;
  point_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> point_items;
  point_items.reserve(points.size());
  for (const PointObject& s : points) {
    point_items.push_back({Rect::AtPoint(s.location), s.id});
  }
  Result<RTree> point_index =
      RTree::BulkLoad(point_options, std::move(point_items));
  if (!point_index.ok()) return point_index.status();

  // U-catalogs must exist before the PTI is built.
  for (UncertainObject& obj : uncertains) {
    ILQ_RETURN_NOT_OK(obj.BuildCatalog(config.catalog_values));
  }

  RTreeOptions uncertain_options;
  uncertain_options.page_size_bytes = config.page_size_bytes;
  std::vector<RTree::Item> uncertain_items;
  uncertain_items.reserve(uncertains.size());
  for (size_t i = 0; i < uncertains.size(); ++i) {
    uncertain_items.push_back(
        {uncertains[i].region(), static_cast<ObjectId>(i)});
  }
  Result<RTree> uncertain_index =
      RTree::BulkLoad(uncertain_options, std::move(uncertain_items));
  if (!uncertain_index.ok()) return uncertain_index.status();

  std::optional<PTI> pti;
  if (!uncertains.empty()) {
    Result<PTI> built =
        PTI::Build(PTIOptions(config.page_size_bytes,
                              config.catalog_values.size()),
                   uncertains);
    if (!built.ok()) return built.status();
    pti = std::move(built).ValueOrDie();
  }

  auto snap = std::make_shared<Snapshot>(
      Snapshot{MakeCatalogSnapshot(std::move(points), std::move(uncertains)),
               std::move(point_index).ValueOrDie(),
               std::move(uncertain_index).ValueOrDie(), std::move(pti)});
  return QueryEngine(std::move(config), std::move(snap));
}

PagedIndexFiles PagedIndexFiles::InDir(const std::string& dir) {
  PagedIndexFiles files;
  files.point_index = dir + "/points.ilqp";
  files.uncertain_index = dir + "/uncertains.ilqp";
  files.pti_index = dir + "/pti.ilqp";
  return files;
}

Status QueryEngine::SavePagedIndexes(const PagedIndexFiles& files) const {
  const SnapshotPtr snap = snapshot();
  ILQ_RETURN_NOT_OK(snap->point_index.SavePaged(files.point_index));
  ILQ_RETURN_NOT_OK(snap->uncertain_index.SavePaged(files.uncertain_index));
  if (snap->pti.has_value()) {
    ILQ_RETURN_NOT_OK(snap->pti->tree().SavePaged(files.pti_index));
  }
  return Status::OK();
}

Result<QueryEngine> QueryEngine::OpenPaged(CatalogImage image,
                                           const PagedIndexFiles& files,
                                           EngineConfig config) {
  if (config.catalog_values.empty()) {
    config.catalog_values = UCatalog::EvenlySpacedValues(11);
  }
  config.storage = StorageMode::kPaged;
  // Process-global SIMD policy (see the EngineConfig field docs).
  if (config.simd_level) simd::SetActiveSimdLevel(*config.simd_level);
  if (config.kernel_variant) {
    simd::SetActiveKernelVariant(*config.kernel_variant);
  }

  // U-catalogs are derived data; rebuild them exactly as Build does so the
  // threshold-aware evaluators and the PTI attach see the same ladders.
  for (UncertainObject& obj : image.uncertains) {
    ILQ_RETURN_NOT_OK(obj.BuildCatalog(config.catalog_values));
  }

  PagedOpenOptions open_options;
  open_options.buffer_pool_bytes = config.buffer_pool_bytes;
  open_options.deep_verify = config.paged_deep_verify;

  RTreeOptions point_options;
  point_options.page_size_bytes = config.page_size_bytes;
  Result<RTree> point_index =
      RTree::OpenPaged(files.point_index, open_options);
  if (!point_index.ok()) return point_index.status();
  ILQ_RETURN_NOT_OK(CheckMountedIndex(*point_index, point_options,
                                      image.points.size(), "point"));

  // Uncertain leaf ids are *positions* into the uncertains vector, so a
  // forged id past the catalog must fail validation, not index OOB later.
  PagedOpenOptions uncertain_open = open_options;
  uncertain_open.max_leaf_id =
      image.uncertains.empty() ? 0 : image.uncertains.size() - 1;
  Result<RTree> uncertain_index =
      RTree::OpenPaged(files.uncertain_index, uncertain_open);
  if (!uncertain_index.ok()) return uncertain_index.status();
  ILQ_RETURN_NOT_OK(CheckMountedIndex(*uncertain_index, point_options,
                                      image.uncertains.size(), "uncertain"));

  std::optional<PTI> pti;
  if (!image.uncertains.empty()) {
    const RTreeOptions pti_options =
        PTIOptions(config.page_size_bytes, config.catalog_values.size());
    Result<RTree> pti_tree = RTree::OpenPaged(files.pti_index,
                                              uncertain_open);
    if (!pti_tree.ok()) return pti_tree.status();
    ILQ_RETURN_NOT_OK(CheckMountedIndex(*pti_tree, pti_options,
                                        image.uncertains.size(), "PTI"));
    Result<PTI> attached =
        PTI::Attach(std::move(pti_tree).ValueOrDie(), image.uncertains);
    if (!attached.ok()) return attached.status();
    pti = std::move(attached).ValueOrDie();
  }

  auto snap = std::make_shared<Snapshot>(
      Snapshot{MakeCatalogSnapshot(std::move(image.points),
                                   std::move(image.uncertains), image.epoch),
               std::move(point_index).ValueOrDie(),
               std::move(uncertain_index).ValueOrDie(), std::move(pti)});
  return QueryEngine(std::move(config), std::move(snap));
}

bool QueryEngine::is_paged() const {
  const SnapshotPtr snap = snapshot();
  return snap->point_index.is_paged() || snap->uncertain_index.is_paged();
}

Status QueryEngine::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(control_->writer_mu);
  const SnapshotPtr prev = control_->snap.load(std::memory_order_acquire);
  if (prev->point_index.is_paged() || prev->uncertain_index.is_paged() ||
      (prev->pti.has_value() && prev->pti->tree().is_paged())) {
    return Status::FailedPrecondition(
        "disk-resident engine is read-only: paged indexes do not support "
        "updates (no dirty-page write-back yet)");
  }

  // Copy the derived structures; the catalog step below produces the new
  // object vectors itself. Everything here is private until the store.
  auto next = std::make_shared<Snapshot>(
      Snapshot{prev->catalog, prev->point_index, prev->uncertain_index,
               prev->pti});

  IndexMaintenance maintenance(next.get());
  Result<CatalogSnapshotPtr> applied = ApplyCatalogUpdates(
      *prev->catalog, batch, config_.catalog_values, &maintenance);
  if (!applied.ok()) return applied.status();
  next->catalog = std::move(applied).ValueOrDie();

  // PTI policy: drop it when the uncertain set emptied; bulk-(re)build when
  // absent or degraded past the threshold; otherwise refresh the node
  // catalogs bottom-up (they are stale after any structural change).
  const std::vector<UncertainObject>& uncertains = next->catalog->uncertains;
  if (uncertains.empty()) {
    next->pti.reset();
  } else if (maintenance.uncertain_ops() || !next->pti.has_value()) {
    const size_t threshold = std::max(
        config_.pti_rebuild_min_updates,
        static_cast<size_t>(config_.pti_rebuild_fraction *
                            static_cast<double>(uncertains.size())));
    const bool rebuild = !next->pti.has_value() ||
                         next->pti->updates_since_build() > threshold;
    if (rebuild) {
      Result<PTI> built =
          PTI::Build(PTIOptions(config_.page_size_bytes,
                                config_.catalog_values.size()),
                     uncertains);
      if (!built.ok()) return built.status();
      next->pti = std::move(built).ValueOrDie();
      control_->pti_rebuilds.fetch_add(1, std::memory_order_relaxed);
    } else {
      ILQ_RETURN_NOT_OK(next->pti->RefreshCatalogs(uncertains));
      control_->pti_refreshes.fetch_add(1, std::memory_order_relaxed);
    }
  }

  control_->snap.store(std::move(next), std::memory_order_release);
  control_->batches.fetch_add(1, std::memory_order_relaxed);
  control_->ops.fetch_add(batch.size(), std::memory_order_relaxed);
  return Status::OK();
}

UpdateStats QueryEngine::update_stats() const {
  UpdateStats stats;
  stats.batches = control_->batches.load(std::memory_order_relaxed);
  stats.ops = control_->ops.load(std::memory_order_relaxed);
  stats.pti_rebuilds =
      control_->pti_rebuilds.load(std::memory_order_relaxed);
  stats.pti_refreshes =
      control_->pti_refreshes.load(std::memory_order_relaxed);
  return stats;
}

const std::vector<PointObject>& QueryEngine::points() const {
  return control_->snap.load(std::memory_order_acquire)->catalog->points;
}

const std::vector<UncertainObject>& QueryEngine::uncertains() const {
  return control_->snap.load(std::memory_order_acquire)->catalog->uncertains;
}

const RTree& QueryEngine::point_index() const {
  return control_->snap.load(std::memory_order_acquire)->point_index;
}

const RTree& QueryEngine::uncertain_index() const {
  return control_->snap.load(std::memory_order_acquire)->uncertain_index;
}

const PTI* QueryEngine::pti() const {
  const Snapshot& snap =
      *control_->snap.load(std::memory_order_acquire);
  return snap.pti.has_value() ? &*snap.pti : nullptr;
}

AnswerSet QueryEngine::Ipq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIPQ(snap->point_index, issuer, spec, config_.eval, stats);
}

AnswerSet QueryEngine::IpqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIPQBasic(snap->point_index, snap->catalog->points, issuer,
                          spec, config_.basic, stats);
}

AnswerSet QueryEngine::Iuq(const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIUQ(snap->uncertain_index, snap->catalog->uncertains,
                     issuer, spec, config_.eval, stats);
}

AnswerSet QueryEngine::IuqBasic(const UncertainObject& issuer,
                                const RangeQuerySpec& spec,
                                IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateIUQBasic(snap->uncertain_index, snap->catalog->uncertains,
                          issuer, spec, config_.basic, stats);
}

AnswerSet QueryEngine::Cipq(const UncertainObject& issuer,
                            const RangeQuerySpec& spec, CipqFilter filter,
                            IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateCIPQ(snap->point_index, issuer, spec, filter, config_.eval,
                      stats);
}

AnswerSet QueryEngine::CiuqRTree(const UncertainObject& issuer,
                                 const RangeQuerySpec& spec,
                                 IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  return EvaluateCIUQRTree(snap->uncertain_index,
                           snap->catalog->uncertains, issuer, spec,
                           config_.eval, stats);
}

AnswerSet QueryEngine::CiuqPti(const UncertainObject& issuer,
                               const RangeQuerySpec& spec,
                               const CiuqPruneConfig& prune,
                               IndexStats* stats) const {
  const SnapshotPtr snap = snapshot();
  if (!snap->pti.has_value()) return {};
  return EvaluateCIUQPTI(*snap->pti, snap->catalog->uncertains, issuer,
                         spec, config_.eval, prune, stats);
}

Result<UncertainObject> QueryEngine::MakeIssuer(
    std::unique_ptr<UncertaintyPdf> pdf) const {
  if (pdf == nullptr) {
    return Status::InvalidArgument("issuer pdf must not be null");
  }
  UncertainObject issuer(/*id=*/0, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(config_.catalog_values));
  return issuer;
}

}  // namespace ilq
