// QueryEngine — the library facade.
//
// Owns the point and uncertain datasets, builds the spatial indexes
// (R-tree over points, R-tree over uncertainty regions, PTI with merged
// U-catalogs) and exposes the four query classes of the paper with method
// selection. Examples and benches talk to this class; the lower-level
// evaluators remain available for fine-grained use.

#ifndef ILQ_CORE_ENGINE_H_
#define ILQ_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/basic_eval.h"
#include "core/batch.h"
#include "core/cipq.h"
#include "core/ciuq.h"
#include "core/query.h"
#include "index/pti.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief Engine construction parameters (defaults follow §6.1).
struct EngineConfig {
  /// R-tree / PTI node page budget (paper: 4K).
  size_t page_size_bytes = 4096;

  /// U-catalog value ladder pre-computed for every uncertain object. The
  /// paper's experiments catalogue probabilities 0, 0.1, …, 1 (§6.1).
  std::vector<double> catalog_values;  // empty = EvenlySpacedValues(11)

  /// Probability-kernel configuration shared by all queries.
  EvalOptions eval;

  /// Baseline (§3.3) sampling configuration.
  BasicEvalOptions basic;
};

/// \brief Datasets + indexes + query entry points.
///
/// Thread safety: after Build returns, every const member function —
/// all eight query entry points, MakeIssuer and the introspection
/// accessors — is safe to call concurrently from any number of threads.
/// The engine's datasets and indexes are immutable once built, the
/// evaluators keep no shared mutable state (Monte-Carlo streams are
/// seeded per candidate from MixSeeds(EvalOptions::mc_seed, object id),
/// so a candidate's probability is independent of traversal order — the
/// invariant the sharded serving layer's fan-out relies on), and traversal
/// scratch lives on the stack of each call. Per-query IndexStats are
/// written only through the caller-owned out-param, which must not be
/// shared between concurrent queries. RunBatch builds on exactly this
/// guarantee.
class QueryEngine {
 public:
  /// Builds the engine: bulk-loads the point R-tree and the uncertain
  /// R-tree, attaches U-catalogs to every uncertain object and builds the
  /// PTI. Either dataset may be empty (the corresponding queries then
  /// return empty answers).
  static Result<QueryEngine> Build(std::vector<PointObject> points,
                                   std::vector<UncertainObject> uncertains,
                                   EngineConfig config = EngineConfig{});

  // ---- Imprecise queries (§4) -------------------------------------------

  /// IPQ via Minkowski expansion + duality (Eqs. 5/6).
  AnswerSet Ipq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                IndexStats* stats = nullptr) const;

  /// IPQ via the §3.3 sampling baseline.
  AnswerSet IpqBasic(const UncertainObject& issuer,
                     const RangeQuerySpec& spec,
                     IndexStats* stats = nullptr) const;

  /// IUQ via Minkowski expansion + duality (Eq. 8).
  AnswerSet Iuq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                IndexStats* stats = nullptr) const;

  /// IUQ via the §3.3 sampling baseline (Eq. 4).
  AnswerSet IuqBasic(const UncertainObject& issuer,
                     const RangeQuerySpec& spec,
                     IndexStats* stats = nullptr) const;

  // ---- Constrained queries (§5) -----------------------------------------

  /// C-IPQ with the chosen candidate filter (Figure 11 compares the two).
  AnswerSet Cipq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                 CipqFilter filter = CipqFilter::kPExpanded,
                 IndexStats* stats = nullptr) const;

  /// C-IUQ baseline: Minkowski filter on the plain R-tree (Figure 12's
  /// "Minkowski Sum" series).
  AnswerSet CiuqRTree(const UncertainObject& issuer,
                      const RangeQuerySpec& spec,
                      IndexStats* stats = nullptr) const;

  /// C-IUQ via PTI + p-expanded-query + strategies 1–3 (Figure 12's
  /// "p-Expanded-Query" series).
  AnswerSet CiuqPti(const UncertainObject& issuer,
                    const RangeQuerySpec& spec,
                    const CiuqPruneConfig& prune = CiuqPruneConfig{},
                    IndexStats* stats = nullptr) const;

  // ---- Batch evaluation (parallel workloads) -----------------------------

  /// Evaluates \p method once per issuer, fanning the issuers across
  /// \p options.threads worker threads (see BatchOptions). Results come
  /// back in issuer order and are bit-identical to running the serial
  /// loop `for (issuer : issuers) method(issuer, spec)` — every query owns
  /// its evaluation state, so neither thread count nor chunking can change
  /// an answer. total_stats merges the per-thread counter partials with
  /// IndexStats::Merge and is likewise thread-count-invariant.
  BatchResult RunBatch(QueryMethod method,
                       const std::vector<UncertainObject>& issuers,
                       const BatchSpec& spec,
                       const BatchOptions& options = BatchOptions{}) const;

  // ---- Issuer helper -----------------------------------------------------

  /// Wraps an issuer pdf as the query issuer O0, pre-building its U-catalog
  /// on the engine's value ladder (needed by the threshold-aware methods).
  Result<UncertainObject> MakeIssuer(
      std::unique_ptr<UncertaintyPdf> pdf) const;

  // ---- Introspection ------------------------------------------------------

  const std::vector<PointObject>& points() const { return points_; }
  const std::vector<UncertainObject>& uncertains() const {
    return uncertains_;
  }
  const RTree& point_index() const { return point_index_; }
  const RTree& uncertain_index() const { return uncertain_index_; }
  /// Null when the uncertain dataset is empty.
  const PTI* pti() const { return pti_.has_value() ? &*pti_ : nullptr; }
  const EngineConfig& config() const { return config_; }

 private:
  QueryEngine(std::vector<PointObject> points,
              std::vector<UncertainObject> uncertains, EngineConfig config,
              RTree point_index, RTree uncertain_index,
              std::optional<PTI> pti)
      : points_(std::move(points)),
        uncertains_(std::move(uncertains)),
        config_(std::move(config)),
        point_index_(std::move(point_index)),
        uncertain_index_(std::move(uncertain_index)),
        pti_(std::move(pti)) {}

  std::vector<PointObject> points_;
  std::vector<UncertainObject> uncertains_;
  EngineConfig config_;
  RTree point_index_;
  RTree uncertain_index_;
  std::optional<PTI> pti_;
};

}  // namespace ilq

#endif  // ILQ_CORE_ENGINE_H_
