// QueryEngine — the library facade.
//
// Owns the point and uncertain datasets, builds the spatial indexes
// (R-tree over points, R-tree over uncertainty regions, PTI with merged
// U-catalogs) and exposes the four query classes of the paper with method
// selection. Examples and benches talk to this class; the lower-level
// evaluators remain available for fine-grained use.
//
// Since PR 6 the engine is *mutable*: the datasets and indexes live in an
// immutable epoch-stamped Snapshot published through an atomic shared_ptr
// (the same RCU discipline as the object layer's Catalog and PR 3's
// lock-free Gauss-Legendre rule cache). Queries load the snapshot once and
// stay pure functions of it; ApplyUpdates builds the next snapshot
// copy-on-write — maintaining both R-trees per-op and the PTI by
// refresh-or-rebuild — and publishes it atomically.

#ifndef ILQ_CORE_ENGINE_H_
#define ILQ_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/basic_eval.h"
#include "core/batch.h"
#include "core/cipq.h"
#include "core/ciuq.h"
#include "core/query.h"
#include "index/pti.h"
#include "index/rtree.h"
#include "object/catalog.h"
#include "object/snapshot.h"
#include "object/uncertain_object.h"
#include "simd/simd_policy.h"

namespace ilq {

/// Where the engine's R-tree / PTI nodes live (ISSUE 8 out-of-core
/// catalogs). kMemory is the historical in-RAM arena; kPaged mounts
/// SavePagedIndexes files read-only behind per-index LRU buffers.
enum class StorageMode {
  kMemory,
  kPaged,
};

/// \brief Engine construction parameters (defaults follow §6.1).
struct EngineConfig {
  /// R-tree / PTI node page budget (paper: 4K). In kPaged mode this is
  /// also the physical page size of the index files.
  size_t page_size_bytes = 4096;

  /// Node storage backend. Build always constructs in memory; this mode
  /// is how bundle-opening helpers (wire/disk_bundle.h) decide between
  /// rebuilding indexes and mounting them, and OpenPaged stamps it so
  /// config() reflects what the engine is actually running on.
  StorageMode storage = StorageMode::kMemory;

  /// LRU page-buffer budget *per index* for kPaged engines. Budgets far
  /// below the index file size are supported: queries thrash but answer
  /// bit-identically.
  size_t buffer_pool_bytes = 8ull << 20;

  /// Run the full untrusted-file validation walk when mounting paged
  /// indexes (one sequential read per file). Disable only for files this
  /// process just wrote.
  bool paged_deep_verify = true;

  /// U-catalog value ladder pre-computed for every uncertain object. The
  /// paper's experiments catalogue probabilities 0, 0.1, …, 1 (§6.1).
  std::vector<double> catalog_values;  // empty = EvenlySpacedValues(11)

  /// Probability-kernel configuration shared by all queries.
  EvalOptions eval;

  /// Baseline (§3.3) sampling configuration.
  BasicEvalOptions basic;

  /// PTI rebuild policy: when the PTI has accumulated more than
  /// max(pti_rebuild_min_updates, pti_rebuild_fraction × |uncertains|)
  /// tree mutations since its last (re)build, ApplyUpdates bulk-rebuilds
  /// it instead of refreshing node catalogs in place — incremental
  /// quadratic-split inserts slowly degrade the STR packing.
  double pti_rebuild_fraction = 0.25;
  size_t pti_rebuild_min_updates = 16;

  /// SIMD kernel policy (src/simd/simd_policy.h). These set the
  /// *process-global* active tier / variant when the engine is built or
  /// mounted — the kernel tables are stateless and shared, so the settings
  /// affect every engine in the process and the last writer wins. Leave
  /// unset (the default) to keep the detected tier and strict kernels;
  /// mainly useful for tests and benches pinning a specific tier, and for
  /// opting a process into the fast-FMA variant. The ILQ_SIMD_LEVEL env var
  /// caps whatever is requested here.
  std::optional<simd::SimdLevel> simd_level;
  std::optional<simd::KernelVariant> kernel_variant;
};

/// \brief The on-disk index file set backing one kPaged engine.
///
/// The pti file exists only when the uncertain set is non-empty (mirroring
/// Snapshot::pti); SavePagedIndexes skips it and OpenPaged does not look
/// for it otherwise.
struct PagedIndexFiles {
  std::string point_index;
  std::string uncertain_index;
  std::string pti_index;

  /// The conventional layout used by the serving tier and benches:
  /// <dir>/points.ilqp, <dir>/uncertains.ilqp, <dir>/pti.ilqp.
  static PagedIndexFiles InDir(const std::string& dir);
};

/// Monotone counters describing the engine's update history (all zero for
/// a freshly built engine).
struct UpdateStats {
  uint64_t batches = 0;        ///< successful ApplyUpdates calls
  uint64_t ops = 0;            ///< individual UpdateOps applied
  uint64_t pti_rebuilds = 0;   ///< full PTI bulk rebuilds
  uint64_t pti_refreshes = 0;  ///< in-place node-catalog refreshes
};

/// \brief Datasets + indexes + query entry points.
///
/// Thread safety: every const member function — all eight query entry
/// points, MakeIssuer and the introspection accessors — is safe to call
/// concurrently from any number of threads, concurrently with ApplyUpdates.
/// Each query loads the current Snapshot once (acquire) and evaluates
/// against only that snapshot, so a query observes exactly one epoch; the
/// evaluators keep no shared mutable state (Monte-Carlo streams are seeded
/// per candidate from MixSeeds(EvalOptions::mc_seed, object id), so a
/// candidate's probability is independent of traversal order *and* of index
/// structure — the invariant both the sharded fan-out and the dynamic-
/// update differential tests rely on). ApplyUpdates serializes writers
/// internally. Per-query IndexStats are written only through the
/// caller-owned out-param, which must not be shared between concurrent
/// queries. RunBatch builds on exactly this guarantee.
class QueryEngine {
 public:
  /// One immutable epoch of the engine: the object catalog plus every
  /// index derived from it. Published whole; never mutated after publish.
  struct Snapshot {
    CatalogSnapshotPtr catalog;
    RTree point_index;       // items keyed by ObjectId
    RTree uncertain_index;   // items keyed by *position* into uncertains
    std::optional<PTI> pti;  // null when the uncertain set is empty
    uint64_t epoch() const { return catalog->epoch; }
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  /// Builds the engine: bulk-loads the point R-tree and the uncertain
  /// R-tree, attaches U-catalogs to every uncertain object and builds the
  /// PTI. Either dataset may be empty (the corresponding queries then
  /// return empty answers).
  ///
  /// Update support additionally requires ids unique within each object
  /// kind; Build does not enforce this (read-only engines never needed it)
  /// but ApplyUpdates rejects batches against ambiguous catalogs.
  static Result<QueryEngine> Build(std::vector<PointObject> points,
                                   std::vector<UncertainObject> uncertains,
                                   EngineConfig config = EngineConfig{});

  // ---- Out-of-core indexes (ISSUE 8) -------------------------------------

  /// Serializes the *currently published* snapshot's indexes to paged
  /// files (overwrite). Typically paired with SaveCatalogImage so the
  /// whole engine state round-trips: catalog file + index files =
  /// everything OpenPaged needs.
  Status SavePagedIndexes(const PagedIndexFiles& files) const;

  /// Opens a disk-resident engine: the object vectors come from \p image
  /// (U-catalogs are rebuilt on the config ladder — they are derived
  /// data), the indexes are *mounted* from \p files behind per-index LRU
  /// buffers instead of being rebuilt. Answers are bit-identical to a
  /// Build over the same image for every query method and kernel.
  ///
  /// Each file's header geometry (page size, fanout, per-entry catalog
  /// charge) is cross-checked against \p config and its item count against
  /// the image — kFailedPrecondition on mismatch, so a stale index file
  /// cannot silently serve a different catalog. With
  /// config.paged_deep_verify the full corruption walk runs per file.
  /// The returned engine is read-only: ApplyUpdates returns
  /// kFailedPrecondition.
  static Result<QueryEngine> OpenPaged(CatalogImage image,
                                       const PagedIndexFiles& files,
                                       EngineConfig config = EngineConfig{});

  /// True when this engine's indexes are disk-resident (read-only).
  bool is_paged() const;

  // ---- Updates (epoch-versioned, PR 6) -----------------------------------

  /// Applies one update batch copy-on-write and publishes the next epoch.
  /// All-or-nothing: on error nothing is published and the engine still
  /// answers from the previous epoch. Both R-trees are maintained per-op
  /// (wiring RTree::Insert/Remove); the PTI is refreshed bottom-up, or
  /// bulk-rebuilt past the EngineConfig rebuild threshold. Serialized
  /// against concurrent ApplyUpdates calls; never blocks readers.
  /// Disk-resident engines (OpenPaged) are read-only and reject every
  /// batch with kFailedPrecondition.
  Status ApplyUpdates(const UpdateBatch& batch);

  /// Epoch of the currently published snapshot (0 = as built).
  uint64_t epoch() const { return snapshot()->epoch(); }

  /// The currently published snapshot (acquire load). Holding the returned
  /// pointer keeps that epoch's data alive regardless of later updates.
  SnapshotPtr snapshot() const;

  /// Cumulative update counters.
  UpdateStats update_stats() const;

  /// O(1) fork: a new engine sharing this engine's *current* snapshot (and
  /// config) but with independent update control. Updating the fork never
  /// affects this engine — the serving layer uses this to apply a batch to
  /// a private copy and publish whole shard sets atomically. The fork's
  /// update counters start at zero; the epoch carries over.
  QueryEngine Fork() const { return QueryEngine(config_, snapshot()); }

  // ---- Imprecise queries (§4) -------------------------------------------

  /// IPQ via Minkowski expansion + duality (Eqs. 5/6).
  AnswerSet Ipq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                IndexStats* stats = nullptr) const;

  /// IPQ via the §3.3 sampling baseline.
  AnswerSet IpqBasic(const UncertainObject& issuer,
                     const RangeQuerySpec& spec,
                     IndexStats* stats = nullptr) const;

  /// IUQ via Minkowski expansion + duality (Eq. 8).
  AnswerSet Iuq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                IndexStats* stats = nullptr) const;

  /// IUQ via the §3.3 sampling baseline (Eq. 4).
  AnswerSet IuqBasic(const UncertainObject& issuer,
                     const RangeQuerySpec& spec,
                     IndexStats* stats = nullptr) const;

  // ---- Constrained queries (§5) -----------------------------------------

  /// C-IPQ with the chosen candidate filter (Figure 11 compares the two).
  AnswerSet Cipq(const UncertainObject& issuer, const RangeQuerySpec& spec,
                 CipqFilter filter = CipqFilter::kPExpanded,
                 IndexStats* stats = nullptr) const;

  /// C-IUQ baseline: Minkowski filter on the plain R-tree (Figure 12's
  /// "Minkowski Sum" series).
  AnswerSet CiuqRTree(const UncertainObject& issuer,
                      const RangeQuerySpec& spec,
                      IndexStats* stats = nullptr) const;

  /// C-IUQ via PTI + p-expanded-query + strategies 1–3 (Figure 12's
  /// "p-Expanded-Query" series).
  AnswerSet CiuqPti(const UncertainObject& issuer,
                    const RangeQuerySpec& spec,
                    const CiuqPruneConfig& prune = CiuqPruneConfig{},
                    IndexStats* stats = nullptr) const;

  // ---- Batch evaluation (parallel workloads) -----------------------------

  /// Evaluates \p method once per issuer, fanning the issuers across
  /// \p options.threads worker threads (see BatchOptions). Results come
  /// back in issuer order and are bit-identical to running the serial
  /// loop `for (issuer : issuers) method(issuer, spec)` — every query owns
  /// its evaluation state, so neither thread count nor chunking can change
  /// an answer. total_stats merges the per-thread counter partials with
  /// IndexStats::Merge and is likewise thread-count-invariant.
  BatchResult RunBatch(QueryMethod method,
                       const std::vector<UncertainObject>& issuers,
                       const BatchSpec& spec,
                       const BatchOptions& options = BatchOptions{}) const;

  // ---- Issuer helper -----------------------------------------------------

  /// Wraps an issuer pdf as the query issuer O0, pre-building its U-catalog
  /// on the engine's value ladder (needed by the threshold-aware methods).
  Result<UncertainObject> MakeIssuer(
      std::unique_ptr<UncertaintyPdf> pdf) const;

  // ---- Introspection ------------------------------------------------------
  // These return references into the *currently published* snapshot; they
  // stay valid until the next ApplyUpdates publishes a successor (hold
  // snapshot() to pin an epoch across updates).

  const std::vector<PointObject>& points() const;
  const std::vector<UncertainObject>& uncertains() const;
  const RTree& point_index() const;
  const RTree& uncertain_index() const;
  /// Null when the uncertain dataset is empty.
  const PTI* pti() const;
  const EngineConfig& config() const { return config_; }

 private:
  struct Control {
    std::atomic<SnapshotPtr> snap;
    std::mutex writer_mu;
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> pti_rebuilds{0};
    std::atomic<uint64_t> pti_refreshes{0};
  };

  QueryEngine(EngineConfig config, SnapshotPtr snapshot);

  EngineConfig config_;
  // Heap-held so the engine stays movable (atomics are not).
  std::unique_ptr<Control> control_;
};

}  // namespace ilq

#endif  // ILQ_CORE_ENGINE_H_
