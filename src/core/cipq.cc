#include "core/cipq.h"

#include "core/expansion.h"
#include "core/point_eval.h"

namespace ilq {

AnswerSet EvaluateCIPQ(const RTree& index, const UncertainObject& issuer,
                       const RangeQuerySpec& spec, CipqFilter filter,
                       const EvalOptions& options, IndexStats* stats) {
  Rect range;
  if (filter == CipqFilter::kMinkowski) {
    range = MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  } else if (issuer.catalog() != nullptr) {
    range = PExpandedQueryFromCatalog(*issuer.catalog(), spec.w, spec.h,
                                      spec.threshold);
  } else {
    range = PExpandedQuery(issuer.pdf(), spec.w, spec.h, spec.threshold);
  }
  return EvaluatePointCandidates(index, range, issuer.pdf_variant(), spec,
                                 spec.threshold, options, stats);
}

}  // namespace ilq
