#include "core/cipq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateCIPQ(const RTree& index, const UncertainObject& issuer,
                       const RangeQuerySpec& spec, CipqFilter filter,
                       const EvalOptions& options, IndexStats* stats) {
  Rect range;
  if (filter == CipqFilter::kMinkowski) {
    range = MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  } else if (issuer.catalog() != nullptr) {
    range = PExpandedQueryFromCatalog(*issuer.catalog(), spec.w, spec.h,
                                      spec.threshold);
  } else {
    range = PExpandedQuery(issuer.pdf(), spec.w, spec.h, spec.threshold);
  }

  AnswerSet answers;
  const UncertaintyPdf& pdf = issuer.pdf();
  // Kernel choice hoisted out of the candidate loop (see ipq.cc).
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    Rng rng(options.mc_seed);
    index.Query(
        range,
        [&](const Rect& box, ObjectId id) {
          const double pi = PointQualificationMC(
              pdf, box.Center(), spec.w, spec.h, options.mc_samples, &rng);
          if (pi > 0.0 && pi >= spec.threshold) answers.push_back({id, pi});
        },
        stats);
  } else {
    index.Query(
        range,
        [&](const Rect& box, ObjectId id) {
          const double pi =
              PointQualification(pdf, box.Center(), spec.w, spec.h);
          if (pi > 0.0 && pi >= spec.threshold) answers.push_back({id, pi});
        },
        stats);
  }
  return answers;
}

}  // namespace ilq
