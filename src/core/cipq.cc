#include "core/cipq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateCIPQ(const RTree& index, const UncertainObject& issuer,
                       const RangeQuerySpec& spec, CipqFilter filter,
                       const EvalOptions& options, IndexStats* stats) {
  Rect range;
  if (filter == CipqFilter::kMinkowski) {
    range = MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  } else if (issuer.catalog() != nullptr) {
    range = PExpandedQueryFromCatalog(*issuer.catalog(), spec.w, spec.h,
                                      spec.threshold);
  } else {
    range = PExpandedQuery(issuer.pdf(), spec.w, spec.h, spec.threshold);
  }

  AnswerSet answers;
  Rng rng(options.mc_seed);
  index.Query(
      range,
      [&](const Rect& box, ObjectId id) {
        const Point s = box.Center();
        const double pi =
            options.kernel == ProbabilityKernel::kMonteCarlo
                ? PointQualificationMC(issuer.pdf(), s, spec.w, spec.h,
                                       options.mc_samples, &rng)
                : PointQualification(issuer.pdf(), s, spec.w, spec.h);
        if (pi > 0.0 && pi >= spec.threshold) answers.push_back({id, pi});
      },
      stats);
  return answers;
}

}  // namespace ilq
