// Constrained IUQ evaluation (§5.2–5.3, Definition 6).
//
// Baseline: R-tree filtered by the Minkowski sum, every candidate's
// probability computed and thresholded.
//
// PTI method: traversal restricted to the Qp-expanded-query (which realizes
// Strategy 2 — anything fully outside it is skipped), with Strategy 1
// (object/subtree p-bounds vs. Ui ∩ (R ⊕ U0)) and Strategy 3 (the
// qmin · dmin < Qp product bound) applied at both interior-node and leaf
// level using the PTI's merged U-catalogs. Only survivors have their
// qualification probability computed.
//
// Boundary semantics follow the paper: pruning certifies pi ≤ bound ≤ Qp,
// so answers with pi exactly equal to Qp may be pruned (measure-zero for
// continuous pdfs). Survivors are kept when pi ≥ Qp and pi > 0.

#ifndef ILQ_CORE_CIUQ_H_
#define ILQ_CORE_CIUQ_H_

#include <vector>

#include "core/query.h"
#include "index/index_stats.h"
#include "index/pti.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// Per-strategy toggles (for the ablation bench; all on by default).
struct CiuqPruneConfig {
  bool strategy1 = true;  ///< p-bound of Oi vs Ui ∩ (R ⊕ U0) (§5.2 S1)
  bool strategy2 = true;  ///< Qp-expanded-query filter (§5.2 S2)
  bool strategy3 = true;  ///< qmin · dmin < Qp product bound (§5.2 S3)
};

/// Baseline C-IUQ: Minkowski filter on a plain R-tree (ids index into
/// \p objects), probabilities computed for every candidate.
AnswerSet EvaluateCIUQRTree(const RTree& index,
                            const std::vector<UncertainObject>& objects,
                            const UncertainObject& issuer,
                            const RangeQuerySpec& spec,
                            const EvalOptions& options,
                            IndexStats* stats = nullptr);

/// PTI-based C-IUQ with strategies 1–3. The issuer must carry a U-catalog
/// (it provides the p-expanded queries and Strategy 3's qmin); objects in
/// \p objects carry the catalogs the PTI was built from.
AnswerSet EvaluateCIUQPTI(const PTI& pti,
                          const std::vector<UncertainObject>& objects,
                          const UncertainObject& issuer,
                          const RangeQuerySpec& spec,
                          const EvalOptions& options,
                          const CiuqPruneConfig& prune = CiuqPruneConfig{},
                          IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_CIUQ_H_
