// Query expansion (§4.1 and §5.1): the Minkowski-sum expanded query and its
// threshold-aware refinement, the p-expanded-query.
//
// Lemma 1: an object can have non-zero qualification probability iff it
// touches R ⊕ U0 — so the expanded rectangle is both a correctness filter
// and the range handed to the spatial index (§4.3).
//
// Lemma 5: each side of the p-expanded-query sits w (resp. h) outside the
// issuer's own p-bound line, so any *point* object outside it qualifies with
// probability < p (Definition 7). The 0-expanded-query is exactly the
// Minkowski sum.

#ifndef ILQ_CORE_EXPANSION_H_
#define ILQ_CORE_EXPANSION_H_

#include "geometry/minkowski.h"
#include "geometry/rect.h"
#include "object/ucatalog.h"
#include "prob/pdf.h"

namespace ilq {

/// R ⊕ U0 for a rectangular issuer region (Figure 2): U0 grown by the query
/// half-extents on each side.
constexpr Rect MinkowskiExpandedQuery(const Rect& u0, double w, double h) {
  return ExpandedQueryRange(u0, w, h);
}

/// Exact p-expanded-query from the issuer's pdf (Lemma 5): the issuer's
/// p-bound box [l0(p), r0(p)] × [b0(p), t0(p)] grown by (w, h). For p = 0
/// this is the Minkowski sum; it shrinks as p grows and may become empty
/// once the p-bound lines cross (2p-mass wider than the query), in which
/// case nothing can qualify with probability ≥ p.
Rect PExpandedQuery(const UncertaintyPdf& issuer_pdf, double w, double h,
                    double p);

/// Catalog-based p-expanded-query (§5.1's U-catalog discussion): uses the
/// largest catalogued value M ≤ \p qp, whose expanded query *encloses* the
/// exact Qp-expanded-query and is therefore a conservative filter.
Rect PExpandedQueryFromCatalog(const UCatalog& issuer_catalog, double w,
                               double h, double qp);

}  // namespace ilq

#endif  // ILQ_CORE_EXPANSION_H_
