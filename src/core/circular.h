// Circular-issuer queries — the paper's §7 "non-rectangular uncertainty
// regions" future-work item, implemented for disk-shaped issuer regions
// (GPS error circles, privacy cloaking radii).
//
// The Minkowski sum of the query rectangle and a disk is a rounded
// rectangle (geometry/minkowski.h); it plays Lemma 1's role as both
// correctness filter and index range (via its bounding box + an exact
// rounded-rect refinement). Lemma 3 carries over unchanged — the point
// kernel is the issuer's disk mass inside the dual rectangle, which is
// closed-form (exact disk–rectangle overlap areas). Lemma 5's p-expanded-
// query argument only uses marginal quantiles, so it also holds verbatim
// for disk pdfs and powers the constrained variant.

#ifndef ILQ_CORE_CIRCULAR_H_
#define ILQ_CORE_CIRCULAR_H_

#include <vector>

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"
#include "prob/disk_pdf.h"

namespace ilq {

/// IPQ with a disk-shaped issuer: answers are point objects (indexed in
/// \p index as degenerate rectangles) with non-zero qualification
/// probability; probabilities are exact (disk–rect overlap ratios).
AnswerSet EvaluateIPQCircular(const RTree& index,
                              const UniformDiskPdf& issuer,
                              const RangeQuerySpec& spec,
                              IndexStats* stats = nullptr);

/// C-IPQ with a disk-shaped issuer: only answers with pi ≥ spec.threshold.
/// Filtering uses the exact Qp-expanded-query built from the disk's
/// marginal quantiles (Lemma 5 generalizes to any issuer pdf) intersected
/// with the rounded-rectangle Minkowski sum.
AnswerSet EvaluateCIPQCircular(const RTree& index,
                               const UniformDiskPdf& issuer,
                               const RangeQuerySpec& spec,
                               IndexStats* stats = nullptr);

/// IUQ with a disk-shaped issuer over uncertain objects (\p index ids are
/// indexes into \p objects). Probabilities evaluate through the generic
/// Eq. 8 quadrature (the disk pdf is not product-form) or Monte-Carlo per
/// \p options.
AnswerSet EvaluateIUQCircular(const RTree& index,
                              const std::vector<UncertainObject>& objects,
                              const UniformDiskPdf& issuer,
                              const RangeQuerySpec& spec,
                              const EvalOptions& options,
                              IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_CIRCULAR_H_
