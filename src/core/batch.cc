#include "core/batch.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace ilq {

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kIpq:
      return "ipq";
    case QueryMethod::kIpqBasic:
      return "ipq_basic";
    case QueryMethod::kIuq:
      return "iuq";
    case QueryMethod::kIuqBasic:
      return "iuq_basic";
    case QueryMethod::kCipqPExpanded:
      return "cipq_pexp";
    case QueryMethod::kCipqMinkowski:
      return "cipq_mink";
    case QueryMethod::kCiuqRTree:
      return "ciuq_rtree";
    case QueryMethod::kCiuqPti:
      return "ciuq_pti";
  }
  return "unknown";
}

const std::vector<QueryMethod>& AllQueryMethods() {
  static const std::vector<QueryMethod> kAll = {
      QueryMethod::kIpq,           QueryMethod::kIpqBasic,
      QueryMethod::kIuq,           QueryMethod::kIuqBasic,
      QueryMethod::kCipqPExpanded, QueryMethod::kCipqMinkowski,
      QueryMethod::kCiuqRTree,     QueryMethod::kCiuqPti,
  };
  // Keeps kQueryMethodCount (and every per-method array sized by it)
  // honest when a ninth method is added.
  ILQ_CHECK(kAll.size() == kQueryMethodCount,
            "AllQueryMethods out of sync with kQueryMethodCount");
  return kAll;
}

AnswerSet RunQueryMethod(const QueryEngine& engine, QueryMethod method,
                         const UncertainObject& issuer, const BatchSpec& spec,
                         IndexStats* stats) {
  switch (method) {
    case QueryMethod::kIpq:
      return engine.Ipq(issuer, spec.query, stats);
    case QueryMethod::kIpqBasic:
      return engine.IpqBasic(issuer, spec.query, stats);
    case QueryMethod::kIuq:
      return engine.Iuq(issuer, spec.query, stats);
    case QueryMethod::kIuqBasic:
      return engine.IuqBasic(issuer, spec.query, stats);
    case QueryMethod::kCipqPExpanded:
      return engine.Cipq(issuer, spec.query, CipqFilter::kPExpanded, stats);
    case QueryMethod::kCipqMinkowski:
      return engine.Cipq(issuer, spec.query, CipqFilter::kMinkowski, stats);
    case QueryMethod::kCiuqRTree:
      return engine.CiuqRTree(issuer, spec.query, stats);
    case QueryMethod::kCiuqPti:
      return engine.CiuqPti(issuer, spec.query, spec.prune, stats);
  }
  return {};
}

void CanonicalizeAnswers(AnswerSet* answers) {
  std::sort(answers->begin(), answers->end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.probability < b.probability;
            });
  answers->erase(std::unique(answers->begin(), answers->end()),
                 answers->end());
}

bool QueryMethodUsesPoints(QueryMethod method) {
  switch (method) {
    case QueryMethod::kIpq:
    case QueryMethod::kIpqBasic:
    case QueryMethod::kCipqPExpanded:
    case QueryMethod::kCipqMinkowski:
      return true;
    case QueryMethod::kIuq:
    case QueryMethod::kIuqBasic:
    case QueryMethod::kCiuqRTree:
    case QueryMethod::kCiuqPti:
      return false;
  }
  return false;
}

BatchResult QueryEngine::RunBatch(QueryMethod method,
                                  const std::vector<UncertainObject>& issuers,
                                  const BatchSpec& spec,
                                  const BatchOptions& options) const {
  const size_t n = issuers.size();
  const size_t threads =
      std::max<size_t>(1, std::min(options.threads == 0
                                       ? ThreadPool::DefaultThreadCount()
                                       : options.threads,
                                   n == 0 ? 1 : n));

  BatchResult result;
  result.threads_used = threads;
  result.answers.resize(n);
  result.per_query_stats.resize(n);
  if (options.collect_timings) result.query_ms.resize(n);
  if (n == 0) return result;

  // Each worker writes only its own issuers' slots (disjoint by index) and
  // its own partial counter entry, so the batch needs no locking at all.
  std::vector<IndexStats> per_thread(threads);
  Stopwatch batch_watch;
  const auto evaluate_one = [&](size_t i, size_t worker) {
    IndexStats& stats = result.per_query_stats[i];
    if (options.collect_timings) {
      Stopwatch watch;
      result.answers[i] =
          RunQueryMethod(*this, method, issuers[i], spec, &stats);
      result.query_ms[i] = watch.ElapsedMillis();
    } else {
      result.answers[i] =
          RunQueryMethod(*this, method, issuers[i], spec, &stats);
    }
    per_thread[worker].Merge(stats);
  };
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) evaluate_one(i, 0);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(n, evaluate_one, options.chunk);
  }
  result.wall_ms = batch_watch.ElapsedMillis();

  for (const IndexStats& partial : per_thread) {
    result.total_stats.Merge(partial);
  }
  return result;
}

}  // namespace ilq
