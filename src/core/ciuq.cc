#include "core/ciuq.h"

#include <optional>
#include <variant>

#include "common/logging.h"
#include "core/duality.h"
#include "core/expansion.h"
#include "prob/pdf_variant.h"

namespace ilq {

namespace {

// One std::visit over both variants, then the monomorphized analytic / MC
// kernel for the concrete pdf pair. The MC stream is seeded per candidate
// from (mc_seed, object id) so pruning and traversal order cannot shift it.
double ComputeProbability(const UncertainObject& obj,
                          const UncertainObject& issuer,
                          const RangeQuerySpec& spec,
                          const EvalOptions& options) {
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    Rng rng(MixSeeds(options.mc_seed, obj.id()));
    return UncertainQualificationMC(issuer.pdf_variant(), obj.pdf_variant(),
                                    spec.w, spec.h, options.mc_samples, &rng);
  }
  return UncertainQualification(issuer.pdf_variant(), obj.pdf_variant(),
                                spec.w, spec.h, options.quadrature_order);
}

}  // namespace

AnswerSet EvaluateCIUQRTree(const RTree& index,
                            const std::vector<UncertainObject>& objects,
                            const UncertainObject& issuer,
                            const RangeQuerySpec& spec,
                            const EvalOptions& options, IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  // Issuer visited once per query, objects once per candidate (see iuq.cc).
  std::visit(
      [&](const auto& issuer_pdf) {
        if (options.kernel == ProbabilityKernel::kMonteCarlo) {
          index.Query(
              expanded,
              [&](const Rect&, ObjectId idx) {
                const UncertainObject& obj = objects[idx];
                Rng rng(MixSeeds(options.mc_seed, obj.id()));
                const double pi = std::visit(
                    [&](const auto& object_pdf) {
                      return UncertainQualificationMCT(
                          issuer_pdf, object_pdf, spec.w, spec.h,
                          options.mc_samples, &rng);
                    },
                    obj.pdf_variant());
                if (pi > 0.0 && pi >= spec.threshold) {
                  answers.push_back({obj.id(), pi});
                }
              },
              stats);
        } else {
          index.Query(
              expanded,
              [&](const Rect&, ObjectId idx) {
                const UncertainObject& obj = objects[idx];
                const double pi = std::visit(
                    [&](const auto& object_pdf) {
                      return QualifyPair(issuer_pdf, object_pdf, spec.w,
                                         spec.h, options.quadrature_order);
                    },
                    obj.pdf_variant());
                if (pi > 0.0 && pi >= spec.threshold) {
                  answers.push_back({obj.id(), pi});
                }
              },
              stats);
        }
      },
      issuer.pdf_variant());
  return answers;
}

AnswerSet EvaluateCIUQPTI(const PTI& pti,
                          const std::vector<UncertainObject>& objects,
                          const UncertainObject& issuer,
                          const RangeQuerySpec& spec,
                          const EvalOptions& options,
                          const CiuqPruneConfig& prune, IndexStats* stats) {
  const UCatalog* issuer_catalog = issuer.catalog();
  ILQ_CHECK(issuer_catalog != nullptr,
            "C-IUQ via PTI requires the issuer to carry a U-catalog");
  const double qp = spec.threshold;
  const Rect minkowski =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);

  // Strategy 2: traversal restricted to the Qp-expanded-query (the largest
  // catalogued M ≤ Qp keeps the filter conservative, §5.1).
  const Rect filter =
      prune.strategy2
          ? PExpandedQueryFromCatalog(*issuer_catalog, spec.w, spec.h, qp)
          : minkowski;

  // Pre-compute the issuer's v-expanded-query for every catalogued value v;
  // Strategy 3 scans these for the smallest qualifying qmin ≥ Qp.
  std::vector<Rect> issuer_expanded(issuer_catalog->size());
  for (size_t i = 0; i < issuer_catalog->size(); ++i) {
    const PBound& b = issuer_catalog->bound(i);
    issuer_expanded[i] =
        Rect(b.l - spec.w, b.r + spec.w, b.b - spec.h, b.t + spec.h);
  }

  // Smallest catalogued issuer value q ≥ Qp whose q-expanded-query misses
  // \p region entirely (so the duality kernel is ≤ q everywhere on it).
  auto find_qmin = [&](const Rect& region) -> std::optional<double> {
    const std::optional<size_t> start = issuer_catalog->CeilIndex(qp);
    if (!start.has_value()) return std::nullopt;
    for (size_t i = *start; i < issuer_catalog->size(); ++i) {
      if (!region.Intersects(issuer_expanded[i])) {
        return issuer_catalog->value(i);
      }
    }
    return std::nullopt;
  };

  // Smallest catalogued object value d ≥ Qp whose p-bound certifies
  // mass(I) ≤ d (I lies beyond one of the four bound lines).
  auto find_dmin = [&](const UCatalog& cat,
                       const Rect& inter) -> std::optional<double> {
    const std::optional<size_t> start = cat.CeilIndex(qp);
    if (!start.has_value()) return std::nullopt;
    for (size_t i = *start; i < cat.size(); ++i) {
      if (cat.bound(i).RegionBeyond(inter)) return cat.value(i);
    }
    return std::nullopt;
  };

  // Shared pruning test for subtrees (region = node MBR, cat = merged
  // subtree catalog) and single objects (region = Ui, cat = own catalog).
  // All tests are conservative for subtrees because merged catalogs bound
  // every child (§5.3).
  auto should_prune = [&](const Rect& region, const UCatalog& cat) -> bool {
    const Rect inter = region.Intersection(minkowski);
    if (inter.IsEmpty()) return true;  // Lemma 1: no chance to qualify
    if (prune.strategy1) {
      const size_t floor_index = cat.FloorIndex(qp);
      // Skip the vacuous M = 1 bound: "mass ≤ 1" certifies nothing, and
      // applying it at Qp = 1 would prune objects whose qualification
      // probability is exactly 1.
      if (cat.value(floor_index) < 1.0 &&
          cat.bound(floor_index).RegionBeyond(inter)) {
        return true;  // mass in Ui ∩ (R ⊕ U0) ≤ M ≤ Qp  (Eqs. 12–14)
      }
    }
    if (prune.strategy3 && qp > 0.0) {
      const std::optional<double> q = find_qmin(region);
      if (q.has_value()) {
        const std::optional<double> d = find_dmin(cat, inter);
        if (d.has_value() && (*q) * (*d) < qp) {
          return true;  // pi ≤ qmin · dmin < Qp  (Eqs. 18–20)
        }
      }
    }
    return false;
  };

  AnswerSet answers;
  pti.Query(
      filter, should_prune,
      [&](ObjectId idx) {
        const UncertainObject& obj = objects[idx];
        const UCatalog* cat = obj.catalog();
        ILQ_CHECK(cat != nullptr, "PTI object lost its catalog");
        if (should_prune(obj.region(), *cat)) return;
        const double pi = ComputeProbability(obj, issuer, spec, options);
        if (pi > 0.0 && pi >= qp) answers.push_back({obj.id(), pi});
      },
      stats);
  return answers;
}

}  // namespace ilq
