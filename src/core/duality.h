// Query–data duality (§4.2, Lemmas 2–4) and the probability kernels built
// on it.
//
// Lemma 2: point Si satisfies the range query centred at Sq iff Sq satisfies
// the same-shaped query centred at Si. Hence (Lemma 3) the qualification
// probability of a point object is the issuer's probability mass inside
// R(xi, yi) — a single MassIn call instead of Eq. 2's integral over U0; for
// a uniform issuer this is Eq. 6's area ratio.
//
// For uncertain objects, Eq. 8 integrates the dual point-kernel Q(x, y)
// against the object's pdf over Ui ∩ (R ⊕ U0). This file provides that
// integral along three analytic paths, fastest applicable first:
//
//   1. uniform ⊗ uniform  — fully closed form (piecewise-quadratic overlap
//      integrals; zero numeric error);
//   2. product ⊗ product  — the kernel factorizes per axis, so two 1-D
//      piecewise Gauss–Legendre integrals suffice;
//   3. anything else      — 2-D composite Gauss–Legendre over the clipped
//      region with Q evaluated through the issuer's MassIn.
//
// Since the PdfVariant refactor the three paths are header-only templates
// (ProductQualificationT / GenericQualificationT / QualifyPair) that the
// evaluators instantiate per concrete pdf pair via std::visit, so
// Density/MassIn/CdfX inline into the quadrature loops. The virtual-
// interface entry points survive as thin forwards to the same templates —
// the legacy path and the monomorphized path run literally the same
// arithmetic, which is what the differential suites assert bit-for-bit.
//
// Monte-Carlo variants (the paper's §6.2 method) live here too.

#ifndef ILQ_CORE_DUALITY_H_
#define ILQ_CORE_DUALITY_H_

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "prob/integrate.h"
#include "prob/pdf.h"
#include "prob/pdf_variant.h"
#include "simd/qual_kernels.h"
#include "simd/sample_block.h"

namespace ilq {

/// Lemma 3: qualification probability of a point object at \p s for a query
/// of half-extents (w, h) issued by \p issuer — the issuer's mass inside
/// the dual range R(s). Exact for every pdf with an exact MassIn.
inline double PointQualification(const UncertaintyPdf& issuer, const Point& s,
                                 double w, double h) {
  return issuer.MassIn(Rect::Centered(s, w, h));
}

/// Monte-Carlo estimate of the same quantity: the fraction of issuer
/// samples whose range query covers \p s (Eq. 2 evaluated by sampling,
/// as the paper does for non-uniform pdfs). Templated so the sampler
/// inlines when \p issuer is a concrete pdf; the rng stream and hit test
/// match the virtual path exactly.
template <typename IssuerPdf>
double PointQualificationMC(const IssuerPdf& issuer, const Point& s, double w,
                            double h, size_t samples, Rng* rng) {
  // Duality keeps even the MC path cheap: sample issuer positions and test
  // whether the *issuer* falls inside R(s) (Lemma 2). Samples are staged
  // into an SoA block and counted by the active SIMD tier's compare+popcount
  // kernel; the rng stream is consumed in exactly the original order and
  // the kernel's compare chain equals Rect::Contains for every input
  // (empty dual rect included), so hit counts are identical at all tiers.
  const Rect dual = Rect::Centered(s, w, h);
  const simd::KernelSet& kernels = simd::ActiveKernels();
  simd::PointSampleBlock block;
  size_t hits = 0;
  size_t done = 0;
  while (done < samples) {
    const size_t m =
        std::min(simd::PointSampleBlock::kCapacity, samples - done);
    for (size_t i = 0; i < m; ++i) block.Set(i, issuer.Sample(rng));
    block.Seal(m);
    hits += kernels.count_in_rect(dual.xmin, dual.xmax, dual.ymin, dual.ymax,
                                  block.x(), block.y(), m);
    done += m;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

/// ∫_{x0}^{x1} |[x − w, x + w] ∩ [a, b]| dx — the 1-D overlap-length
/// integral behind the uniform ⊗ uniform closed form. The integrand is a
/// trapezoid with kinks only at {a − w, a + w, b − w, b + w}, so the
/// integral is evaluated exactly by trapezoidal pieces.
double OverlapLengthIntegral(double x0, double x1, double w, double a,
                             double b);

/// Eq. 8 for a uniform issuer over \p u0 and a uniform object over \p ui,
/// fully closed form:
///   pi = OverlapIntegral_x · OverlapIntegral_y / (|U0| · |Ui|).
double UniformUniformQualification(const Rect& u0, const Rect& ui, double w,
                                   double h);

namespace qual_detail {

// Integrates f over [lo, hi] split at the given interior breakpoints, with
// Gauss–Legendre of the given order per smooth piece. Templated so the
// integrand inlines all the way into the quadrature loop.
template <typename F>
double IntegratePiecewiseGL(F&& f, double lo, double hi,
                            std::vector<double> cuts, size_t order) {
  if (hi <= lo) return 0.0;
  cuts.push_back(lo);
  cuts.push_back(hi);
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  double prev = lo;
  for (double c : cuts) {
    const double piece_lo = std::clamp(prev, lo, hi);
    const double piece_hi = std::clamp(c, lo, hi);
    if (piece_hi > piece_lo) {
      total += IntegrateGL(f, piece_lo, piece_hi, order);
    }
    prev = std::max(prev, c);
  }
  return total;
}

// The kernel's x-direction kink positions: where x ± w crosses the issuer's
// x-extent [a, b].
inline std::vector<double> KernelKinks(double a, double b, double w) {
  return {a - w, a + w, b - w, b + w};
}

}  // namespace qual_detail

/// Eq. 8 when both pdfs are product-form (IsProduct()): the integral
/// factorizes into two 1-D integrals of marginal-density × kernel, each
/// integrated piecewise (split at the kernel's kinks) with Gauss–Legendre
/// of order \p gl_order per piece. Instantiate with concrete pdf types to
/// inline the marginals/CDFs into the quadrature loop; the UncertaintyPdf
/// instantiation is the legacy virtual path.
template <typename IssuerPdf, typename ObjectPdf>
double ProductQualificationT(const IssuerPdf& issuer, const ObjectPdf& object,
                             double w, double h, size_t gl_order) {
  const Rect u0 = issuer.bounds();
  const Rect ui = object.bounds();
  // Per-axis integral of (object marginal density) × (kernel CDF window).
  const double ix = qual_detail::IntegratePiecewiseGL(
      [&](double x) {
        return object.MarginalPdfX(x) *
               (issuer.CdfX(x + w) - issuer.CdfX(x - w));
      },
      ui.xmin, ui.xmax, qual_detail::KernelKinks(u0.xmin, u0.xmax, w),
      gl_order);
  if (ix <= 0.0) return 0.0;
  const double iy = qual_detail::IntegratePiecewiseGL(
      [&](double y) {
        return object.MarginalPdfY(y) *
               (issuer.CdfY(y + h) - issuer.CdfY(y - h));
      },
      ui.ymin, ui.ymax, qual_detail::KernelKinks(u0.ymin, u0.ymax, h),
      gl_order);
  return ix * iy;
}

/// Eq. 8 for arbitrary pdfs: 2-D composite Gauss–Legendre over
/// Ui ∩ (R ⊕ U0), with the integrand fi(x, y) · Q(x, y) and Q evaluated via
/// the issuer's MassIn. \p gl_order applies per axis per smooth cell.
/// Instantiate with concrete pdf types to devirtualize the per-node
/// Density/MassIn calls.
template <typename IssuerPdf, typename ObjectPdf>
double GenericQualificationT(const IssuerPdf& issuer, const ObjectPdf& object,
                             double w, double h, size_t gl_order) {
  // Integration region: Ui clipped to the expanded query R ⊕ U0 (Lemma 4 —
  // the kernel vanishes outside it).
  const Rect expanded = issuer.bounds().Expanded(w, h);
  const Rect region = object.bounds().Intersection(expanded);
  if (region.IsEmpty()) return 0.0;

  const Rect u0 = issuer.bounds();
  std::vector<double> x_cuts = qual_detail::KernelKinks(u0.xmin, u0.xmax, w);
  std::vector<double> y_cuts = qual_detail::KernelKinks(u0.ymin, u0.ymax, h);
  object.AppendBreakpointsX(&x_cuts);
  object.AppendBreakpointsY(&y_cuts);

  auto clip_sort = [](std::vector<double>& cuts, double lo, double hi) {
    cuts.push_back(lo);
    cuts.push_back(hi);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::remove_if(cuts.begin(), cuts.end(),
                              [&](double c) { return c < lo || c > hi; }),
               cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  };
  clip_sort(x_cuts, region.xmin, region.xmax);
  clip_sort(y_cuts, region.ymin, region.ymax);

  auto integrand = [&](double x, double y) {
    const double fi = object.Density(Point(x, y));
    if (fi <= 0.0) return 0.0;
    return fi * issuer.MassIn(Rect::Centered(Point(x, y), w, h));
  };

  double total = 0.0;
  for (size_t i = 0; i + 1 < x_cuts.size(); ++i) {
    for (size_t j = 0; j + 1 < y_cuts.size(); ++j) {
      const Rect cell(x_cuts[i], x_cuts[i + 1], y_cuts[j], y_cuts[j + 1]);
      if (cell.Width() <= 0.0 || cell.Height() <= 0.0) continue;
      total += IntegrateGL2D(integrand, cell, gl_order, gl_order);
    }
  }
  return total;
}

/// Eq. 8 for product-form pdfs through the virtual interface (legacy entry
/// point; forwards to ProductQualificationT<UncertaintyPdf, UncertaintyPdf>
/// so both paths run the same arithmetic).
double ProductQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order);

/// Eq. 8 for arbitrary pdfs through the virtual interface (legacy entry
/// point; forwards to GenericQualificationT).
double GenericQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order);

/// Monte-Carlo estimate of Eq. 4 by paired sampling: draw (issuer position,
/// object position) pairs and count how often the object falls inside the
/// issuer's range — the paper's evaluation procedure for uncertain objects
/// under non-uniform pdfs. Templated so both samplers inline for concrete
/// pdf pairs; rng consumption matches the virtual path exactly.
template <typename IssuerPdf, typename ObjectPdf>
double UncertainQualificationMCT(const IssuerPdf& issuer,
                                 const ObjectPdf& object, double w, double h,
                                 size_t samples, Rng* rng) {
  // Pairs are staged into an SoA block (issuer then object per draw — the
  // rng stream order the scalar loop used) and counted by the active SIMD
  // tier's centered-range kernel, which replays Rect::Centered + Contains
  // arithmetic exactly.
  const simd::KernelSet& kernels = simd::ActiveKernels();
  simd::PairSampleBlock block;
  size_t hits = 0;
  size_t done = 0;
  while (done < samples) {
    const size_t m =
        std::min(simd::PairSampleBlock::kCapacity, samples - done);
    for (size_t i = 0; i < m; ++i) {
      const Point q = issuer.Sample(rng);
      const Point o = object.Sample(rng);
      block.Set(i, q, o);
    }
    block.Seal(m);
    hits += kernels.count_pairs_centered(block.qx(), block.qy(), block.ox(),
                                         block.oy(), m, w, h);
    done += m;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

/// Monte-Carlo Eq. 4 through the virtual interface (legacy entry point;
/// forwards to the template).
double UncertainQualificationMC(const UncertaintyPdf& issuer,
                                const UncertaintyPdf& object, double w,
                                double h, size_t samples, Rng* rng);

/// Dispatches to the fastest applicable analytic path (closed form /
/// separable / generic 2-D quadrature) through the virtual interface,
/// picking the path by dynamic_cast / IsProduct at runtime.
double UncertainQualification(const UncertaintyPdf& issuer,
                              const UncertaintyPdf& object, double w,
                              double h, size_t gl_order);

/// Compile-time analytic-path dispatch for one concrete pdf pair — the
/// monomorphized heart of the PdfVariant fast path. AnyPdf alternatives
/// (open-world pdfs) fall back to the runtime dispatcher above so they
/// still pick the right path, just through virtual calls.
template <typename IssuerPdf, typename ObjectPdf>
double QualifyPair(const IssuerPdf& issuer, const ObjectPdf& object, double w,
                   double h, size_t gl_order) {
  if constexpr (std::is_same_v<IssuerPdf, AnyPdf> ||
                std::is_same_v<ObjectPdf, AnyPdf>) {
    return UncertainQualification(PdfBaseRef(issuer), PdfBaseRef(object), w,
                                  h, gl_order);
  } else if constexpr (std::is_same_v<IssuerPdf, UniformRectPdf> &&
                       std::is_same_v<ObjectPdf, UniformRectPdf>) {
    return UniformUniformQualification(issuer.bounds(), object.bounds(), w,
                                       h);
  } else if constexpr (kPdfIsProduct<IssuerPdf> &&
                       kPdfIsProduct<ObjectPdf>) {
    return ProductQualificationT(issuer, object, w, h, gl_order);
  } else {
    return GenericQualificationT(issuer, object, w, h, gl_order);
  }
}

/// Eq. 8 for two pdf variants: one std::visit, then the monomorphized
/// QualifyPair kernel.
inline double UncertainQualification(const PdfVariant& issuer,
                                     const PdfVariant& object, double w,
                                     double h, size_t gl_order) {
  return std::visit(
      [&](const auto& i, const auto& o) {
        return QualifyPair(i, o, w, h, gl_order);
      },
      issuer, object);
}

/// Monte-Carlo Eq. 4 for two pdf variants: one std::visit, then the
/// monomorphized sampling loop.
inline double UncertainQualificationMC(const PdfVariant& issuer,
                                       const PdfVariant& object, double w,
                                       double h, size_t samples, Rng* rng) {
  return std::visit(
      [&](const auto& i, const auto& o) {
        return UncertainQualificationMCT(i, o, w, h, samples, rng);
      },
      issuer, object);
}

/// Lemma 3 for a pdf variant issuer: one std::visit, then the alternative's
/// non-virtual MassIn.
inline double PointQualification(const PdfVariant& issuer, const Point& s,
                                 double w, double h) {
  return PdfMassIn(issuer, Rect::Centered(s, w, h));
}

/// Monte-Carlo Lemma 3 for a pdf variant issuer.
inline double PointQualificationMC(const PdfVariant& issuer, const Point& s,
                                   double w, double h, size_t samples,
                                   Rng* rng) {
  return std::visit(
      [&](const auto& pdf) {
        return PointQualificationMC(pdf, s, w, h, samples, rng);
      },
      issuer);
}

}  // namespace ilq

#endif  // ILQ_CORE_DUALITY_H_
