// Query–data duality (§4.2, Lemmas 2–4) and the probability kernels built
// on it.
//
// Lemma 2: point Si satisfies the range query centred at Sq iff Sq satisfies
// the same-shaped query centred at Si. Hence (Lemma 3) the qualification
// probability of a point object is the issuer's probability mass inside
// R(xi, yi) — a single MassIn call instead of Eq. 2's integral over U0; for
// a uniform issuer this is Eq. 6's area ratio.
//
// For uncertain objects, Eq. 8 integrates the dual point-kernel Q(x, y)
// against the object's pdf over Ui ∩ (R ⊕ U0). This file provides that
// integral along three analytic paths, fastest applicable first:
//
//   1. uniform ⊗ uniform  — fully closed form (piecewise-quadratic overlap
//      integrals; zero numeric error);
//   2. product ⊗ product  — the kernel factorizes per axis, so two 1-D
//      piecewise Gauss–Legendre integrals suffice;
//   3. anything else      — 2-D composite Gauss–Legendre over the clipped
//      region with Q evaluated through the issuer's MassIn.
//
// Monte-Carlo variants (the paper's §6.2 method) live here too.

#ifndef ILQ_CORE_DUALITY_H_
#define ILQ_CORE_DUALITY_H_

#include <cstddef>

#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "prob/pdf.h"

namespace ilq {

/// Lemma 3: qualification probability of a point object at \p s for a query
/// of half-extents (w, h) issued by \p issuer — the issuer's mass inside
/// the dual range R(s). Exact for every pdf with an exact MassIn.
inline double PointQualification(const UncertaintyPdf& issuer, const Point& s,
                                 double w, double h) {
  return issuer.MassIn(Rect::Centered(s, w, h));
}

/// Monte-Carlo estimate of the same quantity: the fraction of issuer
/// samples whose range query covers \p s (Eq. 2 evaluated by sampling,
/// as the paper does for non-uniform pdfs).
double PointQualificationMC(const UncertaintyPdf& issuer, const Point& s,
                            double w, double h, size_t samples, Rng* rng);

/// ∫_{x0}^{x1} |[x − w, x + w] ∩ [a, b]| dx — the 1-D overlap-length
/// integral behind the uniform ⊗ uniform closed form. The integrand is a
/// trapezoid with kinks only at {a − w, a + w, b − w, b + w}, so the
/// integral is evaluated exactly by trapezoidal pieces.
double OverlapLengthIntegral(double x0, double x1, double w, double a,
                             double b);

/// Eq. 8 for a uniform issuer over \p u0 and a uniform object over \p ui,
/// fully closed form:
///   pi = OverlapIntegral_x · OverlapIntegral_y / (|U0| · |Ui|).
double UniformUniformQualification(const Rect& u0, const Rect& ui, double w,
                                   double h);

/// Eq. 8 when both pdfs are product-form (IsProduct()): the integral
/// factorizes into two 1-D integrals of marginal-density × kernel, each
/// integrated piecewise (split at the kernel's kinks) with Gauss–Legendre
/// of order \p gl_order per piece.
double ProductQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order);

/// Eq. 8 for arbitrary pdfs: 2-D composite Gauss–Legendre over
/// Ui ∩ (R ⊕ U0), with the integrand fi(x, y) · Q(x, y) and Q evaluated via
/// the issuer's MassIn. \p gl_order applies per axis per smooth cell.
double GenericQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order);

/// Monte-Carlo estimate of Eq. 4 by paired sampling: draw (issuer position,
/// object position) pairs and count how often the object falls inside the
/// issuer's range — the paper's evaluation procedure for uncertain objects
/// under non-uniform pdfs.
double UncertainQualificationMC(const UncertaintyPdf& issuer,
                                const UncertaintyPdf& object, double w,
                                double h, size_t samples, Rng* rng);

/// Dispatches to the fastest applicable analytic path (closed form /
/// separable / generic 2-D quadrature).
double UncertainQualification(const UncertaintyPdf& issuer,
                              const UncertaintyPdf& object, double w,
                              double h, size_t gl_order);

}  // namespace ilq

#endif  // ILQ_CORE_DUALITY_H_
