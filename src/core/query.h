// Query descriptors and answer types for imprecise location-dependent range
// queries (§3.2, Definitions 3–6).

#ifndef ILQ_CORE_QUERY_H_
#define ILQ_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "object/point_object.h"

namespace ilq {

/// \brief Shape and threshold of one imprecise location-dependent range
/// query.
///
/// The range is an axis-parallel rectangle of half-width `w` and half-height
/// `h` centred at the query issuer's (uncertain) location. `threshold` is
/// the probability threshold Qp of the constrained variants (0 recovers the
/// unconstrained IPQ/IUQ).
struct RangeQuerySpec {
  double w = 0.0;          ///< half-width of the query rectangle
  double h = 0.0;          ///< half-height of the query rectangle
  double threshold = 0.0;  ///< Qp ∈ [0, 1]; answers need pi ≥ Qp

  constexpr RangeQuerySpec() = default;
  constexpr RangeQuerySpec(double half_w, double half_h, double qp = 0.0)
      : w(half_w), h(half_h), threshold(qp) {}
};

/// \brief One answer tuple (object, qualification probability).
struct ProbabilisticAnswer {
  ObjectId id = 0;
  double probability = 0.0;

  friend bool operator==(const ProbabilisticAnswer& a,
                         const ProbabilisticAnswer& b) = default;
};

/// Answer set of an imprecise query: all objects with non-zero (IPQ/IUQ) or
/// above-threshold (C-IPQ/C-IUQ) qualification probability.
using AnswerSet = std::vector<ProbabilisticAnswer>;

/// How qualification probabilities are computed for surviving candidates.
enum class ProbabilityKernel {
  /// Closed forms / deterministic quadrature (exact for uniform, near-exact
  /// for product pdfs, tensor quadrature otherwise).
  kAnalytic,
  /// Monte-Carlo sampling — the paper's method for non-uniform pdfs (§6.2).
  kMonteCarlo,
};

/// \brief Evaluation knobs shared by all evaluators.
struct EvalOptions {
  ProbabilityKernel kernel = ProbabilityKernel::kAnalytic;

  /// Monte-Carlo sample count. The paper's sensitivity analysis settled on
  /// ≥200 samples for C-IPQ and ≥250 for C-IUQ (§6.2).
  size_t mc_samples = 250;

  /// Seed for the per-query Monte-Carlo stream.
  uint64_t mc_seed = 0xC0FFEE;

  /// Gauss–Legendre order per smooth piece for the quadrature paths.
  size_t quadrature_order = 16;
};

}  // namespace ilq

#endif  // ILQ_CORE_QUERY_H_
