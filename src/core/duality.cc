#include "core/duality.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "prob/integrate.h"
#include "prob/uniform_pdf.h"

namespace ilq {

namespace {

// Overlap length |[x-w, x+w] ∩ [a, b]| as a function of x.
double OverlapLen(double x, double w, double a, double b) {
  const double lo = std::max(x - w, a);
  const double hi = std::min(x + w, b);
  return std::max(0.0, hi - lo);
}

// Integrates f over [lo, hi] split at the given interior breakpoints, with
// Gauss–Legendre of the given order per smooth piece. Templated so the
// integrand inlines all the way into the quadrature loop.
template <typename F>
double IntegratePiecewiseGL(F&& f, double lo, double hi,
                            std::vector<double> cuts, size_t order) {
  if (hi <= lo) return 0.0;
  cuts.push_back(lo);
  cuts.push_back(hi);
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  double prev = lo;
  for (double c : cuts) {
    const double piece_lo = std::clamp(prev, lo, hi);
    const double piece_hi = std::clamp(c, lo, hi);
    if (piece_hi > piece_lo) {
      total += IntegrateGL(f, piece_lo, piece_hi, order);
    }
    prev = std::max(prev, c);
  }
  return total;
}

// The kernel's x-direction kink positions: where x ± w crosses the issuer's
// x-extent [a, b].
std::vector<double> KernelKinks(double a, double b, double w) {
  return {a - w, a + w, b - w, b + w};
}

}  // namespace

double PointQualificationMC(const UncertaintyPdf& issuer, const Point& s,
                            double w, double h, size_t samples, Rng* rng) {
  // Duality keeps even the MC path cheap: sample issuer positions and test
  // whether the *issuer* falls inside R(s) (Lemma 2).
  const Rect dual = Rect::Centered(s, w, h);
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    if (dual.Contains(issuer.Sample(rng))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double OverlapLengthIntegral(double x0, double x1, double w, double a,
                             double b) {
  if (x1 <= x0 || w <= 0.0 || b <= a) return 0.0;
  // The integrand is piecewise linear with kinks at {a−w, a+w, b−w, b+w};
  // the trapezoid rule on each piece is exact.
  std::vector<double> cuts = KernelKinks(a, b, w);
  cuts.push_back(x0);
  cuts.push_back(x1);
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = std::clamp(cuts[i], x0, x1);
    const double hi = std::clamp(cuts[i + 1], x0, x1);
    if (hi <= lo) continue;
    total += 0.5 * (OverlapLen(lo, w, a, b) + OverlapLen(hi, w, a, b)) *
             (hi - lo);
  }
  return total;
}

double UniformUniformQualification(const Rect& u0, const Rect& ui, double w,
                                   double h) {
  const double ix =
      OverlapLengthIntegral(ui.xmin, ui.xmax, w, u0.xmin, u0.xmax);
  if (ix <= 0.0) return 0.0;
  const double iy =
      OverlapLengthIntegral(ui.ymin, ui.ymax, h, u0.ymin, u0.ymax);
  if (iy <= 0.0) return 0.0;
  return ix * iy / (u0.Area() * ui.Area());
}

double ProductQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order) {
  const Rect u0 = issuer.bounds();
  const Rect ui = object.bounds();
  // Per-axis integral of (object marginal density) × (kernel CDF window).
  const double ix = IntegratePiecewiseGL(
      [&](double x) {
        return object.MarginalPdfX(x) *
               (issuer.CdfX(x + w) - issuer.CdfX(x - w));
      },
      ui.xmin, ui.xmax, KernelKinks(u0.xmin, u0.xmax, w), gl_order);
  if (ix <= 0.0) return 0.0;
  const double iy = IntegratePiecewiseGL(
      [&](double y) {
        return object.MarginalPdfY(y) *
               (issuer.CdfY(y + h) - issuer.CdfY(y - h));
      },
      ui.ymin, ui.ymax, KernelKinks(u0.ymin, u0.ymax, h), gl_order);
  return ix * iy;
}

double GenericQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order) {
  // Integration region: Ui clipped to the expanded query R ⊕ U0 (Lemma 4 —
  // the kernel vanishes outside it).
  const Rect expanded = issuer.bounds().Expanded(w, h);
  const Rect region = object.bounds().Intersection(expanded);
  if (region.IsEmpty()) return 0.0;

  const Rect u0 = issuer.bounds();
  std::vector<double> x_cuts = KernelKinks(u0.xmin, u0.xmax, w);
  std::vector<double> y_cuts = KernelKinks(u0.ymin, u0.ymax, h);
  object.AppendBreakpointsX(&x_cuts);
  object.AppendBreakpointsY(&y_cuts);

  auto clip_sort = [](std::vector<double>& cuts, double lo, double hi) {
    cuts.push_back(lo);
    cuts.push_back(hi);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::remove_if(cuts.begin(), cuts.end(),
                              [&](double c) { return c < lo || c > hi; }),
               cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  };
  clip_sort(x_cuts, region.xmin, region.xmax);
  clip_sort(y_cuts, region.ymin, region.ymax);

  auto integrand = [&](double x, double y) {
    const double fi = object.Density(Point(x, y));
    if (fi <= 0.0) return 0.0;
    return fi * issuer.MassIn(Rect::Centered(Point(x, y), w, h));
  };

  double total = 0.0;
  for (size_t i = 0; i + 1 < x_cuts.size(); ++i) {
    for (size_t j = 0; j + 1 < y_cuts.size(); ++j) {
      const Rect cell(x_cuts[i], x_cuts[i + 1], y_cuts[j], y_cuts[j + 1]);
      if (cell.Width() <= 0.0 || cell.Height() <= 0.0) continue;
      total += IntegrateGL2D(integrand, cell, gl_order, gl_order);
    }
  }
  return total;
}

double UncertainQualificationMC(const UncertaintyPdf& issuer,
                                const UncertaintyPdf& object, double w,
                                double h, size_t samples, Rng* rng) {
  size_t hits = 0;
  for (size_t i = 0; i < samples; ++i) {
    const Point q = issuer.Sample(rng);
    const Point o = object.Sample(rng);
    if (Rect::Centered(q, w, h).Contains(o)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double UncertainQualification(const UncertaintyPdf& issuer,
                              const UncertaintyPdf& object, double w,
                              double h, size_t gl_order) {
  const auto* u0 = dynamic_cast<const UniformRectPdf*>(&issuer);
  const auto* ui = dynamic_cast<const UniformRectPdf*>(&object);
  if (u0 != nullptr && ui != nullptr) {
    return UniformUniformQualification(u0->bounds(), ui->bounds(), w, h);
  }
  if (issuer.IsProduct() && object.IsProduct()) {
    return ProductQualification(issuer, object, w, h, gl_order);
  }
  return GenericQualification(issuer, object, w, h, gl_order);
}

}  // namespace ilq
