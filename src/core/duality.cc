#include "core/duality.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "prob/uniform_pdf.h"

namespace ilq {

namespace {

// Overlap length |[x-w, x+w] ∩ [a, b]| as a function of x.
double OverlapLen(double x, double w, double a, double b) {
  const double lo = std::max(x - w, a);
  const double hi = std::min(x + w, b);
  return std::max(0.0, hi - lo);
}

}  // namespace

double OverlapLengthIntegral(double x0, double x1, double w, double a,
                             double b) {
  if (x1 <= x0 || w <= 0.0 || b <= a) return 0.0;
  // The integrand is piecewise linear with kinks at {a−w, a+w, b−w, b+w};
  // the trapezoid rule on each piece is exact.
  std::vector<double> cuts = qual_detail::KernelKinks(a, b, w);
  cuts.push_back(x0);
  cuts.push_back(x1);
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = std::clamp(cuts[i], x0, x1);
    const double hi = std::clamp(cuts[i + 1], x0, x1);
    if (hi <= lo) continue;
    total += 0.5 * (OverlapLen(lo, w, a, b) + OverlapLen(hi, w, a, b)) *
             (hi - lo);
  }
  return total;
}

double UniformUniformQualification(const Rect& u0, const Rect& ui, double w,
                                   double h) {
  const double ix =
      OverlapLengthIntegral(ui.xmin, ui.xmax, w, u0.xmin, u0.xmax);
  if (ix <= 0.0) return 0.0;
  const double iy =
      OverlapLengthIntegral(ui.ymin, ui.ymax, h, u0.ymin, u0.ymax);
  if (iy <= 0.0) return 0.0;
  return ix * iy / (u0.Area() * ui.Area());
}

double ProductQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order) {
  return ProductQualificationT(issuer, object, w, h, gl_order);
}

double GenericQualification(const UncertaintyPdf& issuer,
                            const UncertaintyPdf& object, double w, double h,
                            size_t gl_order) {
  return GenericQualificationT(issuer, object, w, h, gl_order);
}

double UncertainQualificationMC(const UncertaintyPdf& issuer,
                                const UncertaintyPdf& object, double w,
                                double h, size_t samples, Rng* rng) {
  return UncertainQualificationMCT(issuer, object, w, h, samples, rng);
}

double UncertainQualification(const UncertaintyPdf& issuer,
                              const UncertaintyPdf& object, double w,
                              double h, size_t gl_order) {
  const auto* u0 = dynamic_cast<const UniformRectPdf*>(&issuer);
  const auto* ui = dynamic_cast<const UniformRectPdf*>(&object);
  if (u0 != nullptr && ui != nullptr) {
    return UniformUniformQualification(u0->bounds(), ui->bounds(), w, h);
  }
  if (issuer.IsProduct() && object.IsProduct()) {
    return ProductQualification(issuer, object, w, h, gl_order);
  }
  return GenericQualification(issuer, object, w, h, gl_order);
}

}  // namespace ilq
