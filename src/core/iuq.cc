#include "core/iuq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateIUQ(const RTree& index,
                      const std::vector<UncertainObject>& objects,
                      const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  const UncertaintyPdf& issuer_pdf = issuer.pdf();
  // Kernel choice hoisted out of the candidate loop (see ipq.cc).
  if (options.kernel == ProbabilityKernel::kMonteCarlo) {
    Rng rng(options.mc_seed);
    index.Query(
        expanded,
        [&](const Rect&, ObjectId idx) {
          const UncertainObject& obj = objects[idx];
          const double pi =
              UncertainQualificationMC(issuer_pdf, obj.pdf(), spec.w, spec.h,
                                       options.mc_samples, &rng);
          if (pi > 0.0) answers.push_back({obj.id(), pi});
        },
        stats);
  } else {
    index.Query(
        expanded,
        [&](const Rect&, ObjectId idx) {
          const UncertainObject& obj = objects[idx];
          const double pi =
              UncertainQualification(issuer_pdf, obj.pdf(), spec.w, spec.h,
                                     options.quadrature_order);
          if (pi > 0.0) answers.push_back({obj.id(), pi});
        },
        stats);
  }
  return answers;
}

}  // namespace ilq
