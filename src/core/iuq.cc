#include "core/iuq.h"

#include "core/duality.h"
#include "core/expansion.h"

namespace ilq {

AnswerSet EvaluateIUQ(const RTree& index,
                      const std::vector<UncertainObject>& objects,
                      const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  Rng rng(options.mc_seed);
  index.Query(
      expanded,
      [&](const Rect&, ObjectId idx) {
        const UncertainObject& obj = objects[idx];
        const double pi =
            options.kernel == ProbabilityKernel::kMonteCarlo
                ? UncertainQualificationMC(issuer.pdf(), obj.pdf(), spec.w,
                                           spec.h, options.mc_samples, &rng)
                : UncertainQualification(issuer.pdf(), obj.pdf(), spec.w,
                                         spec.h, options.quadrature_order);
        if (pi > 0.0) answers.push_back({obj.id(), pi});
      },
      stats);
  return answers;
}

}  // namespace ilq
