#include "core/iuq.h"

#include <variant>

#include "core/duality.h"
#include "core/expansion.h"
#include "prob/pdf_variant.h"

namespace ilq {

AnswerSet EvaluateIUQ(const RTree& index,
                      const std::vector<UncertainObject>& objects,
                      const UncertainObject& issuer,
                      const RangeQuerySpec& spec, const EvalOptions& options,
                      IndexStats* stats) {
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  AnswerSet answers;
  // One std::visit over the issuer for the whole query; per candidate a
  // second visit over the object picks the monomorphized QualifyPair /
  // MC kernel for the concrete pdf pair (see core/duality.h). MC streams
  // are seeded per candidate from (mc_seed, object id), so answers do not
  // depend on the order the index streams candidates.
  std::visit(
      [&](const auto& issuer_pdf) {
        if (options.kernel == ProbabilityKernel::kMonteCarlo) {
          index.Query(
              expanded,
              [&](const Rect&, ObjectId idx) {
                const UncertainObject& obj = objects[idx];
                Rng rng(MixSeeds(options.mc_seed, obj.id()));
                const double pi = std::visit(
                    [&](const auto& object_pdf) {
                      return UncertainQualificationMCT(
                          issuer_pdf, object_pdf, spec.w, spec.h,
                          options.mc_samples, &rng);
                    },
                    obj.pdf_variant());
                if (pi > 0.0) answers.push_back({obj.id(), pi});
              },
              stats);
        } else {
          index.Query(
              expanded,
              [&](const Rect&, ObjectId idx) {
                const UncertainObject& obj = objects[idx];
                const double pi = std::visit(
                    [&](const auto& object_pdf) {
                      return QualifyPair(issuer_pdf, object_pdf, spec.w,
                                         spec.h, options.quadrature_order);
                    },
                    obj.pdf_variant());
                if (pi > 0.0) answers.push_back({obj.id(), pi});
              },
              stats);
        }
      },
      issuer.pdf_variant());
  return answers;
}

}  // namespace ilq
