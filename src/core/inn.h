// Imprecise nearest-neighbour queries — the paper's §7 future-work item
// ("we will study how other location-dependent queries, such as the
// nearest-neighbor queries, can be supported").
//
// Given an imprecise issuer O0, the INN qualification probability of a
// point object Si is the probability that Si is the nearest object to the
// issuer's true position:
//
//   pi = ∫_{U0} f0(x, y) · 1[Si = argmin_j dist((x, y), Sj)] dx dy
//
// (the nearest-neighbour analogue of Eq. 2; answers form a probability
// distribution over objects, Σ pi = 1). Two evaluators are provided:
//
//   * Monte-Carlo — sample issuer positions from f0 and run a best-first
//     NN search per sample (mirrors the paper's §6.2 methodology);
//   * deterministic grid — midpoint integration over U0, exact in the
//     grid limit (mirrors the §3.3 basic method).
//
// Both restrict work with a Lemma-1-style filter: only objects within the
// maximum possible NN distance (the smallest circle certainly containing
// a neighbour from every point of U0) can have non-zero probability.

#ifndef ILQ_CORE_INN_H_
#define ILQ_CORE_INN_H_

#include <cstdint>

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief Evaluation knobs for imprecise nearest-neighbour queries.
struct InnOptions {
  /// Monte-Carlo issuer samples (the §6.2-style default).
  size_t samples = 250;
  /// Deterministic-grid resolution per axis for EvaluateINNGrid.
  size_t grid_per_axis = 24;
  /// Seed for the Monte-Carlo stream.
  uint64_t seed = 0xBEEF;
  /// Distance ties are broken by smaller object id, making both
  /// evaluators deterministic for fixed inputs.
};

/// Monte-Carlo INN over point objects in \p index. Returns every object
/// that is nearest for at least one sample, with pi = hit fraction.
/// Probabilities over the answer set sum to 1 (empty for an empty index).
AnswerSet EvaluateINN(const RTree& index, const UncertainObject& issuer,
                      const InnOptions& options,
                      IndexStats* stats = nullptr);

/// Deterministic midpoint-grid INN (weights from the issuer's density, as
/// in §3.3). Converges to the exact probabilities as grid_per_axis grows;
/// for a uniform issuer the weights sum to exactly 1.
AnswerSet EvaluateINNGrid(const RTree& index, const UncertainObject& issuer,
                          const InnOptions& options,
                          IndexStats* stats = nullptr);

/// Exact INN for a *uniform* issuer over rectangle \p u0.
///
/// The region of U0 where object Si is nearest is U0 clipped against the
/// perpendicular-bisector half-planes towards every competitor — a convex
/// polygon (the Voronoi cell of Si intersected with U0) — so
/// pi = Area(cell_i) / Area(U0) exactly. Candidates are bounded via the
/// index: only objects within min_j maxdist(U0, Sj) of U0 can be nearest
/// anywhere in it. O(k²) bisector clips for k surviving candidates.
AnswerSet EvaluateINNExactUniform(const RTree& index, const Rect& u0,
                                  IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_INN_H_
