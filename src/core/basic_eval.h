// The basic evaluation method of §3.3: represent U0 by a grid of sampling
// points and numerically integrate Eq. 2 (IPQ) / Eq. 4 (IUQ). This is the
// baseline the paper's Figure 8 compares against; it is deliberately
// integral-heavy — that is the point of the comparison.

#ifndef ILQ_CORE_BASIC_EVAL_H_
#define ILQ_CORE_BASIC_EVAL_H_

#include <vector>

#include "core/query.h"
#include "index/index_stats.h"
#include "index/rtree.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief Knobs for the §3.3 baseline.
struct BasicEvalOptions {
  /// Sampling points per axis over U0 (total samples = square of this).
  /// "A large number of sampling points will be needed to produce an
  /// accurate answer" — 20×20 keeps the relative error around 1e-2 for the
  /// experiment geometries.
  size_t grid_per_axis = 20;

  /// When true (default) candidates are first filtered with the Minkowski
  /// expanded range on the index, so the comparison with the enhanced
  /// method isolates the probability-computation cost, as in Figure 8.
  /// When false, every object in the dataset is evaluated.
  bool use_index = true;
};

/// Basic IPQ (Eq. 2 by grid sampling). \p index must hold the point
/// objects' degenerate rectangles; \p objects is the backing store scanned
/// when use_index is false.
AnswerSet EvaluateIPQBasic(const RTree& index,
                           const std::vector<PointObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats = nullptr);

/// Basic IUQ (Eq. 4 by grid sampling; the inner Eq. 3 integral uses the
/// object's MassIn). \p index holds uncertainty-region boxes whose ids are
/// indexes into \p objects.
AnswerSet EvaluateIUQBasic(const RTree& index,
                           const std::vector<UncertainObject>& objects,
                           const UncertainObject& issuer,
                           const RangeQuerySpec& spec,
                           const BasicEvalOptions& options,
                           IndexStats* stats = nullptr);

}  // namespace ilq

#endif  // ILQ_CORE_BASIC_EVAL_H_
