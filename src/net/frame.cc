#include "net/frame.h"

#include <array>
#include <cstdint>
#include <string>

#include "wire/codec.h"

namespace ilq {

Status WriteFrame(Socket& socket, FrameType type,
                  std::span<const uint8_t> payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::OutOfRange(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the u32 length prefix");
  }
  ByteWriter writer;
  EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()), &writer);
  writer.Raw(payload);
  const std::vector<uint8_t> bytes = std::move(writer).Take();
  return socket.SendAll(bytes);
}

Status ReadFrame(Socket& socket, size_t max_payload_bytes, FrameType* type,
                 std::vector<uint8_t>* payload) {
  std::array<uint8_t, kFrameHeaderBytes> header_bytes{};
  Status status = socket.RecvExact(header_bytes.data(), header_bytes.size());
  if (!status.ok()) return status;  // kNotFound here = clean close

  FrameHeader header;
  ILQ_RETURN_NOT_OK(
      DecodeFrameHeader(header_bytes, max_payload_bytes, &header));
  *type = header.type;

  payload->resize(header.payload_size);
  if (header.payload_size == 0) return Status::OK();
  status = socket.RecvExact(payload->data(), payload->size());
  if (status.code() == StatusCode::kNotFound) {
    // EOF between header and payload is a truncated frame, not a clean
    // close — remap so callers see exactly one "peer is gone" code.
    return Status::IOError("connection closed mid-frame (payload missing)");
  }
  return status;
}

}  // namespace ilq
