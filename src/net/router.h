// Router — the client half of the multi-process serving tier.
//
// Holds one persistent connection per shard server and answers queries by
// Minkowski-box fan-out: RouteOverShardMap (the exact routine
// ShardedEngine::Run uses in-process) picks the shards whose bounds
// intersect the expanded query box, each routed shard evaluates the query
// over its disjoint slice of the catalog, and the id-sorted merge
// (CanonicalizeAnswers, also shared) reassembles the monolithic answer.
// Because the partition is a disjoint cover and every evaluator reseeds MC
// sampling per candidate id, the merged AnswerSet is bit-identical to both
// the monolithic QueryEngine and the in-process ShardedEngine — asserted
// end-to-end by tests/net_loopback_test.cc.
//
// Fault handling: each shard call has a receive deadline (timeout_ms). On
// a transport failure (connection refused / reset / deadline) the router
// drops the cached connection and retries the call on a fresh one up to
// `retries` times — enough to ride out a shard restart. Semantic errors
// (a kError frame from a live server) are returned to the caller as-is,
// not retried. A query fails as a whole when any routed shard stays
// unreachable; the router never returns partial answers.
//
// Continuous sessions (protocol v2): RegisterContinuous opens a session on
// every shard the initial position routes to; UpdateContinuous streams the
// issuer's imprecise positions. Each update goes to every registered shard
// (a registered-but-no-longer-relevant shard answers empty — its replay
// runs the same geometric range search the monolith would, so the merged
// union stays bit-identical); when the new position routes to a shard the
// session is NOT registered on, the router transparently re-registers the
// whole session there first. A shard that answers kNotFound (its
// connection — and with it the server-side session — was lost and
// re-established, or the shard restarted) is transparently re-registered
// too; server-side basis reuse across that churn rides on the answer
// cache's region entries, not the connection. Per-shard valid regions
// merge by intersection, revalidated flags by AND, epochs by max.
//
// Not thread-safe: one Router per client thread (it is a thin bundle of
// sockets; share nothing).

#ifndef ILQ_NET_ROUTER_H_
#define ILQ_NET_ROUTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "continuous/continuous_engine.h"
#include "core/batch.h"
#include "net/socket.h"
#include "object/uncertain_object.h"
#include "prob/pdf_variant.h"
#include "wire/message.h"
#include "wire/shard_map.h"

namespace ilq {

/// \brief Where one shard server listens.
struct RouterEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// \brief Router construction knobs.
struct RouterOptions {
  /// One endpoint per shard, in ShardMap order (endpoint i serves the
  /// objects behind map[i]).
  std::vector<RouterEndpoint> endpoints;

  /// Routing bounds, from SplitCatalogImage / ShardedEngine /
  /// LoadShardMap.
  ShardMap map;

  /// Per-shard-call receive deadline (ms); 0 waits forever.
  int timeout_ms = 5000;

  /// Reconnect-and-resend attempts after a transport failure (0 = fail
  /// fast on the first broken call).
  size_t retries = 1;

  /// Per-frame payload limit (must be >= the servers' limit to accept
  /// their largest response).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// \brief Counter snapshot returned by Router::stats().
struct RouterStats {
  uint64_t queries = 0;      ///< Query() calls
  uint64_t shard_calls = 0;  ///< request frames sent (incl. retries)
  uint64_t retries = 0;      ///< reconnect-and-resend attempts
  uint64_t failures = 0;     ///< shard calls that failed after retries
  uint64_t reconnects = 0;   ///< connections (re)established

  uint64_t continuous_registers = 0;    ///< sessions opened
  uint64_t continuous_updates = 0;      ///< UpdateContinuous() calls
  uint64_t continuous_reregisters = 0;  ///< transparent re-registrations
};

/// \brief Fan-out client over a fleet of ShardServers.
class Router {
 public:
  /// Validates that endpoints and map agree in size. Connections are
  /// established lazily on first use (so a Router can be built before its
  /// servers finish starting).
  static Result<Router> Make(RouterOptions options);

  Router(Router&&) = default;
  Router& operator=(Router&&) = default;

  /// Evaluates one query across the fleet and merges the answers. The
  /// issuer needs only an id and a pdf (its region drives routing; the
  /// catalog is rebuilt server-side). \p last_stats, when given, receives
  /// the WireServeStats of the last shard that answered.
  Result<AnswerSet> Query(const UncertainObject& issuer, QueryMethod method,
                          const BatchSpec& spec,
                          WireServeStats* last_stats = nullptr);

  RouterStats stats() const { return stats_; }

  /// \brief Handle + initial answer of RegisterContinuous.
  struct RegisteredContinuous {
    SubscriptionId id = 0;
    ContinuousAnswer answer;
  };

  /// Opens a continuous session across the fleet: registers on every shard
  /// the issuer's initial position routes to and returns the merged
  /// initial answer. Any of the eight range/threshold QueryMethods.
  Result<RegisteredContinuous> RegisterContinuous(
      QueryMethod method, const BatchSpec& spec,
      const UncertainObject& issuer);

  /// Streams one trajectory step; see the file comment for the exact
  /// re-registration semantics. The merged answer is bit-identical to a
  /// one-shot Query at the same position (same epoch, same catalog).
  Result<ContinuousAnswer> UpdateContinuous(SubscriptionId id,
                                            const UncertainObject& issuer);

  /// Closes the session on every registered shard (best effort — a shard's
  /// per-connection state dies with the connection anyway). kNotFound for
  /// unknown handles.
  Status UnregisterContinuous(SubscriptionId id);

  /// Sessions currently open on this router.
  size_t continuous_session_count() const { return continuous_.size(); }

  size_t shard_count() const { return options_.map.size(); }
  const ShardMap& map() const { return options_.map; }

  /// Drops every cached connection (next Query reconnects). Open
  /// continuous sessions survive: the servers drop their halves when the
  /// connections die, and the next UpdateContinuous re-registers on the
  /// kNotFound they answer with.
  void DisconnectAll();

 private:
  /// Client half of one continuous session.
  struct ContinuousSession {
    uint64_t wire_id = 0;  ///< id on the wire; renewed on full re-register
    QueryMethod method = QueryMethod::kIpq;
    BatchSpec spec;
    ObjectId issuer_id = 0;
    PdfVariant issuer_pdf;  ///< last position sent (re-register payload)
    std::vector<size_t> shards;  ///< registered shard indices, sorted

    ContinuousSession();
  };

  explicit Router(RouterOptions options);

  Status EnsureConnected(size_t shard);
  /// One request/response exchange with shard \p shard, reconnecting and
  /// retrying per RouterOptions::retries.
  Result<WireResponse> CallShard(size_t shard,
                                 std::span<const uint8_t> request_bytes);
  /// The exchange itself, over the current connection; transport errors
  /// only (semantic kError frames decode to an OK-transport Result).
  Result<WireResponse> CallShardOnce(size_t shard,
                                     std::span<const uint8_t> request_bytes);
  /// One continuous exchange (kRegister/kContinuousUpdate/kUnregister →
  /// kContinuousResponse). Retries reconnect-and-resend on kIOError /
  /// kDeadlineExceeded only — kNotFound (clean close or a server that
  /// does not know the session) returns immediately so the caller can
  /// re-register.
  Result<WireContinuousResponse> CallShardContinuous(
      size_t shard, FrameType type, std::span<const uint8_t> payload);
  Result<WireContinuousResponse> CallShardContinuousOnce(
      size_t shard, FrameType type, std::span<const uint8_t> payload);
  /// Registers \p session on \p shard at its current position and folds
  /// the response into \p merged.
  Status RegisterOnShard(ContinuousSession& session, size_t shard,
                         std::vector<WireContinuousResponse>* responses);
  /// Encodes the kRegister payload for the session's current position.
  Result<std::vector<uint8_t>> EncodeRegisterPayload(
      const ContinuousSession& session) const;
  /// Best-effort kUnregister on every shard the session is registered on.
  void UnregisterOnShards(const ContinuousSession& session);

  RouterOptions options_;
  std::vector<Socket> connections_;  // invalid() = not connected
  RouterStats stats_;

  uint64_t next_wire_id_ = 1;
  std::unordered_map<SubscriptionId, ContinuousSession> continuous_;
};

}  // namespace ilq

#endif  // ILQ_NET_ROUTER_H_
