// ShardServer — one shard of the multi-process serving tier.
//
// Wraps the in-process serving stack (ShardedEngine + AsyncServer) behind a
// blocking TCP accept loop speaking the wire/message.h protocol: a client
// sends kRequest frames and gets back one kResponse (answers + serving
// stats) or kError (the evaluation/decode Status) per request, in order,
// over a persistent connection.
//
// Continuous sessions (protocol v2): kRegister / kContinuousUpdate /
// kUnregister frames drive a SubscriptionManager shared by all
// connections, each answered with one kContinuousResponse (or kError).
// Client-chosen subscription ids are scoped to their connection — the
// per-connection table mapping them to manager sessions lives on the
// handler thread (no locking), and every session a connection still holds
// is unregistered when it closes. An update for an id this connection
// never registered (or registered before a reconnect) gets kError
// kNotFound — the router re-registers on that signal, which also covers
// shard-server restarts. Basis reuse across such churn is the answer
// cache's region entries, keyed by issuer id + spec, not by connection.
//
// Threading model: one accept thread polls the listener (so Stop() is
// noticed within an accept-poll interval) and spawns one handler thread per
// connection, bounded by max_connections — a connection over the limit gets
// a kError frame (kFailedPrecondition) and an immediate close. Handlers do
// blocking frame I/O and run queries through the shared AsyncServer, whose
// bounded queue provides cross-connection backpressure.
//
// Fault behavior (asserted by tests/net_fault_test.cc):
//   * malformed request payload  -> kError frame, connection stays up
//   * oversized frame            -> kError frame (kOutOfRange), close —
//                                   the stream cannot be resynced
//   * peer vanishes mid-frame    -> connection dropped, server keeps
//                                   serving every other connection
//   * slow peer (recv timeout)   -> best-effort kError
//                                   (kDeadlineExceeded), close
//
// Shutdown is graceful: Stop() stops accepting, unblocks every in-flight
// read via socket shutdown, joins the handlers (in-flight queries complete
// and their responses are sent), then drains the AsyncServer. The
// examples/shard_server binary wires SIGTERM to Stop() for the
// multi-process deployment (signal handlers only flip an atomic flag; the
// main thread does the actual draining).

#ifndef ILQ_NET_SHARD_SERVER_H_
#define ILQ_NET_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/socket.h"
#include "serve/async_server.h"
#include "serve/sharded_engine.h"
#include "serve/subscription_manager.h"
#include "wire/message.h"

namespace ilq {

/// \brief Server construction knobs.
struct ShardServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back from port()).
  uint16_t port = 0;

  /// Concurrent connections; one over the limit is refused with a kError
  /// frame. Clamped to >= 1.
  size_t max_connections = 64;

  /// Per-frame payload limit enforced before allocation.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Receive timeout per connection (ms); a peer silent for longer —
  /// mid-frame or between frames — is dropped with a best-effort
  /// kDeadlineExceeded error frame. 0 waits forever (routers hold
  /// persistent idle connections, so 0 is the right default; tests lower
  /// it to exercise the slow-peer path).
  int recv_timeout_ms = 0;

  /// Knobs of the inner AsyncServer (worker threads, queue capacity,
  /// answer cache).
  AsyncServerOptions serve;

  /// Knobs of the continuous tier (valid-region horizon, reuse toggle).
  SubscriptionOptions subscription;
};

/// \brief Counter snapshot returned by ShardServer::stats().
struct ShardServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t requests_ok = 0;          ///< kResponse frames sent
  uint64_t requests_rejected = 0;    ///< kError frames sent
  uint64_t io_errors = 0;            ///< connections lost mid-frame
  uint64_t active_connections = 0;   ///< handler threads live right now
};

/// \brief Blocking socket front-end over one shard's engine.
class ShardServer {
 public:
  /// \p engine must outlive the server and is typically a single-shard
  /// ShardedEngine built from one SplitCatalogImage piece.
  explicit ShardServer(const ShardedEngine& engine,
                       ShardServerOptions options = ShardServerOptions{});

  /// Graceful: equivalent to Stop().
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds, listens, and starts the accept thread. kIOError when the port
  /// cannot be bound; kFailedPrecondition when already started.
  Status Start();

  /// The bound port (resolved for ephemeral binds); 0 before Start().
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, unblock and join every handler
  /// (in-flight queries complete and their responses go out), shut down
  /// the inner AsyncServer. Idempotent; safe from a signal-watching
  /// thread.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  ShardServerStats stats() const;

  /// Inner serving stats (queue depth, latency quantiles, continuous
  /// validation/re-evaluation counters) — the source of the
  /// WireServeStats block in every response.
  ServeStats serve_stats() const { return subscriptions_.stats(); }

  /// Continuous-tier counters of this server's SubscriptionManager.
  ContinuousStats continuous_stats() const {
    return subscriptions_.continuous_stats();
  }

  const ShardedEngine& engine() const { return async_.engine(); }

 private:
  /// One continuous session as this connection refers to it.
  struct SessionEntry {
    SubscriptionId id = 0;     ///< SubscriptionManager's id
    ObjectId issuer_id = 0;    ///< pinned at registration; updates must match
  };

  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Client subscription id → manager session. Touched only by this
    /// connection's handler thread, so no lock.
    std::unordered_map<uint64_t, SessionEntry> sessions;
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// Serves one decoded request; returns false when the connection died.
  bool ServeRequest(Connection* conn, std::span<const uint8_t> payload);
  // Continuous-session handlers; same return convention as ServeRequest.
  bool ServeRegister(Connection* conn, std::span<const uint8_t> payload);
  bool ServeContinuousUpdate(Connection* conn,
                             std::span<const uint8_t> payload);
  bool ServeUnregister(Connection* conn, std::span<const uint8_t> payload);
  /// Sends one kContinuousResponse; returns false when the socket died.
  bool SendContinuousResponse(Connection* conn, uint64_t subscription_id,
                              const ContinuousAnswer& answer,
                              double server_ms);
  static void SendErrorFrame(Socket& socket, const Status& error);
  void ReapFinishedConnections();

  const ShardedEngine& engine_;
  ShardServerOptions options_;
  AsyncServer async_;
  SubscriptionManager subscriptions_;

  ListenSocket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;                       // guards connections_
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> io_errors_{0};
};

}  // namespace ilq

#endif  // ILQ_NET_SHARD_SERVER_H_
