// Framed message transport: moves wire/message.h frames over a Socket.
//
// A frame on the wire is the 6-byte header from wire/message.h (u32
// payload size, u8 version, u8 type) followed by the payload. ReadFrame
// validates the header BEFORE allocating or reading the payload, so an
// adversarial peer cannot make the server allocate more than
// max_payload_bytes.
//
// Status contract (on top of net/socket.h's):
//   kNotFound          peer closed cleanly between frames
//   kIOError           peer vanished mid-frame (header or payload cut)
//   kDeadlineExceeded  receive timeout elapsed (slow peer)
//   kOutOfRange        declared payload exceeds max_payload_bytes — the
//                      stream cannot be resynced, close the connection
//   kInvalidArgument   unknown version or frame type

#ifndef ILQ_NET_FRAME_H_
#define ILQ_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "wire/message.h"

namespace ilq {

/// Sends one frame (header + payload in a single buffered send).
Status WriteFrame(Socket& socket, FrameType type,
                  std::span<const uint8_t> payload);

/// Receives one frame into \p type / \p payload, enforcing
/// \p max_payload_bytes before allocation. See the Status contract above;
/// any non-OK return except kNotFound means the connection should be
/// dropped or has already failed.
Status ReadFrame(Socket& socket, size_t max_payload_bytes, FrameType* type,
                 std::vector<uint8_t>* payload);

}  // namespace ilq

#endif  // ILQ_NET_FRAME_H_
