// Thin RAII wrappers over POSIX TCP sockets — the only file in the tree
// that touches <sys/socket.h>. Everything above (net/frame.h, the shard
// server and the router) speaks Status/Result and never sees an fd.
//
// Error vocabulary (shared by the whole net layer, asserted by the
// fault-injection suite):
//   kNotFound          peer closed cleanly before the first requested byte
//   kIOError           connection reset / closed mid-read / send failure
//   kDeadlineExceeded  a configured connect or receive timeout elapsed
//   kInvalidArgument   unresolvable host, bad port, misuse
//
// Blocking I/O with per-socket receive timeouts (SO_RCVTIMEO) keeps the
// code straight-line; concurrency lives one level up (one handler thread
// per accepted connection, bounded by ShardServerOptions). ShutdownBoth()
// is safe to call from another thread and unblocks a stuck RecvExact,
// which is how the server stops handler threads without cancelling them.

#ifndef ILQ_NET_SOCKET_H_
#define ILQ_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace ilq {

/// \brief A connected, move-only TCP stream socket.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected fd (Accept / tests).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;

  /// Connects to host:port (numeric or resolvable name). \p timeout_ms > 0
  /// bounds the TCP handshake (non-blocking connect + poll; the socket is
  /// blocking again on return) and yields kDeadlineExceeded when it
  /// elapses — without it, an endpoint that drops SYNs blocks for the
  /// kernel default (minutes). <= 0 means the plain blocking connect.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                int timeout_ms = 0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Receive timeout for subsequent reads; 0 restores "wait forever".
  Status SetRecvTimeout(int timeout_ms);

  /// Sends all \p data (loops over short writes; SIGPIPE suppressed).
  Status SendAll(std::span<const uint8_t> data);

  /// Reads exactly \p n bytes. kNotFound when the peer closed before the
  /// first byte (clean EOF), kIOError when it closed part-way, and
  /// kDeadlineExceeded when the receive timeout elapsed.
  Status RecvExact(uint8_t* out, size_t n);

  /// shutdown(2) of both directions: unblocks a RecvExact stuck in
  /// another thread. The fd stays owned until Close/destruction.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// \brief A move-only listening TCP socket (loopback-reachable; binds all
/// interfaces with SO_REUSEADDR so a restarted shard can reclaim its
/// port immediately).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ListenSocket(ListenSocket&& o) noexcept : fd_(o.fd_), port_(o.port_) {
    o.fd_ = -1;
    o.port_ = 0;
  }
  ListenSocket& operator=(ListenSocket&& o) noexcept;

  /// Binds and listens. port 0 picks an ephemeral port (read it back from
  /// port()).
  static Result<ListenSocket> Listen(uint16_t port, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved for ephemeral binds).
  uint16_t port() const { return port_; }

  /// Waits up to \p timeout_ms for a connection. kDeadlineExceeded when
  /// none arrived (the accept loop's stop-flag poll interval); kIOError
  /// when the listener is closed/broken.
  Result<Socket> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace ilq

#endif  // ILQ_NET_SOCKET_H_
