#include "net/router.h"

#include <utility>
#include <vector>

#include "net/frame.h"
#include "serve/sharded_engine.h"
#include "wire/codec.h"

namespace ilq {

Router::Router(RouterOptions options) : options_(std::move(options)) {
  connections_.resize(options_.endpoints.size());
}

Result<Router> Router::Make(RouterOptions options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("router needs at least one endpoint");
  }
  if (options.endpoints.size() != options.map.size()) {
    return Status::InvalidArgument(
        "endpoint list and shard map disagree: " +
        std::to_string(options.endpoints.size()) + " endpoints vs " +
        std::to_string(options.map.size()) + " shards");
  }
  return Router(std::move(options));
}

void Router::DisconnectAll() {
  for (Socket& conn : connections_) conn.Close();
}

Status Router::EnsureConnected(size_t shard) {
  if (connections_[shard].valid()) return Status::OK();
  const RouterEndpoint& endpoint = options_.endpoints[shard];
  // timeout_ms bounds the handshake too — a shard that drops SYNs must
  // surface kDeadlineExceeded here, not block for the kernel default.
  auto connected =
      Socket::Connect(endpoint.host, endpoint.port, options_.timeout_ms);
  ILQ_RETURN_NOT_OK(connected.status());
  connections_[shard] = std::move(connected).ValueOrDie();
  if (options_.timeout_ms > 0) {
    ILQ_RETURN_NOT_OK(
        connections_[shard].SetRecvTimeout(options_.timeout_ms));
  }
  stats_.reconnects++;
  return Status::OK();
}

Result<WireResponse> Router::CallShardOnce(
    size_t shard, std::span<const uint8_t> request_bytes) {
  ILQ_RETURN_NOT_OK(EnsureConnected(shard));
  Socket& conn = connections_[shard];
  stats_.shard_calls++;

  Status status = WriteFrame(conn, FrameType::kRequest, request_bytes);
  if (!status.ok()) return status;

  FrameType type = FrameType::kResponse;
  std::vector<uint8_t> payload;
  status = ReadFrame(conn, options_.max_frame_bytes, &type, &payload);
  if (!status.ok()) return status;

  if (type == FrameType::kError) {
    // Semantic rejection from a live server. (A server-sent
    // kDeadlineExceeded — the slow-peer drop — reads as a transport code
    // upstream and gets one retry on a fresh connection, which is the
    // right reaction to that error anyway.)
    Status server_error = Status::OK();
    ILQ_RETURN_NOT_OK(DecodeError(payload, &server_error));
    return server_error;
  }
  if (type != FrameType::kResponse) {
    return Status::InvalidArgument("unexpected frame type from shard");
  }
  return DecodeResponse(payload);
}

Result<WireResponse> Router::CallShard(
    size_t shard, std::span<const uint8_t> request_bytes) {
  for (size_t attempt = 0;; ++attempt) {
    auto response = CallShardOnce(shard, request_bytes);
    if (response.ok()) return response;

    // Transport failures (peer gone, reset, deadline) are worth a
    // reconnect-and-resend: the shard may have restarted. Everything else
    // — including a kError frame a live server sent — is final.
    const StatusCode code = response.status().code();
    const bool transport = code == StatusCode::kNotFound ||
                           code == StatusCode::kIOError ||
                           code == StatusCode::kDeadlineExceeded;
    connections_[shard].Close();
    if (!transport || attempt >= options_.retries) {
      stats_.failures++;
      return response;
    }
    stats_.retries++;
  }
}

Result<AnswerSet> Router::Query(const UncertainObject& issuer,
                                QueryMethod method, const BatchSpec& spec,
                                WireServeStats* last_stats) {
  stats_.queries++;

  WireRequest request;
  request.issuer_id = issuer.id();
  request.issuer_pdf = issuer.pdf_variant();
  request.method = method;
  request.spec = spec;
  ByteWriter writer;
  ILQ_RETURN_NOT_OK(EncodeRequest(request, &writer));
  const std::vector<uint8_t> request_bytes = std::move(writer).Take();

  // Identical routing to ShardedEngine::Run — same function, same map
  // shape — so the fleet evaluates exactly the shards the in-process
  // engine would.
  const std::vector<size_t> routed =
      RouteOverShardMap(options_.map, method, issuer, spec.query);

  AnswerSet merged;
  for (const size_t shard : routed) {
    auto response = CallShard(shard, request_bytes);
    ILQ_RETURN_NOT_OK(response.status());
    WireResponse& r = *response;
    merged.insert(merged.end(), r.answers.begin(), r.answers.end());
    if (last_stats != nullptr) *last_stats = r.stats;
  }
  CanonicalizeAnswers(&merged);
  return merged;
}

}  // namespace ilq
