#include "net/router.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "serve/sharded_engine.h"
#include "wire/codec.h"

namespace ilq {

Router::Router(RouterOptions options) : options_(std::move(options)) {
  connections_.resize(options_.endpoints.size());
}

Result<Router> Router::Make(RouterOptions options) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("router needs at least one endpoint");
  }
  if (options.endpoints.size() != options.map.size()) {
    return Status::InvalidArgument(
        "endpoint list and shard map disagree: " +
        std::to_string(options.endpoints.size()) + " endpoints vs " +
        std::to_string(options.map.size()) + " shards");
  }
  return Router(std::move(options));
}

void Router::DisconnectAll() {
  for (Socket& conn : connections_) conn.Close();
}

Status Router::EnsureConnected(size_t shard) {
  if (connections_[shard].valid()) return Status::OK();
  const RouterEndpoint& endpoint = options_.endpoints[shard];
  // timeout_ms bounds the handshake too — a shard that drops SYNs must
  // surface kDeadlineExceeded here, not block for the kernel default.
  auto connected =
      Socket::Connect(endpoint.host, endpoint.port, options_.timeout_ms);
  ILQ_RETURN_NOT_OK(connected.status());
  connections_[shard] = std::move(connected).ValueOrDie();
  if (options_.timeout_ms > 0) {
    ILQ_RETURN_NOT_OK(
        connections_[shard].SetRecvTimeout(options_.timeout_ms));
  }
  stats_.reconnects++;
  return Status::OK();
}

Result<WireResponse> Router::CallShardOnce(
    size_t shard, std::span<const uint8_t> request_bytes) {
  ILQ_RETURN_NOT_OK(EnsureConnected(shard));
  Socket& conn = connections_[shard];
  stats_.shard_calls++;

  Status status = WriteFrame(conn, FrameType::kRequest, request_bytes);
  if (!status.ok()) return status;

  FrameType type = FrameType::kResponse;
  std::vector<uint8_t> payload;
  status = ReadFrame(conn, options_.max_frame_bytes, &type, &payload);
  if (!status.ok()) return status;

  if (type == FrameType::kError) {
    // Semantic rejection from a live server. (A server-sent
    // kDeadlineExceeded — the slow-peer drop — reads as a transport code
    // upstream and gets one retry on a fresh connection, which is the
    // right reaction to that error anyway.)
    Status server_error = Status::OK();
    ILQ_RETURN_NOT_OK(DecodeError(payload, &server_error));
    return server_error;
  }
  if (type != FrameType::kResponse) {
    return Status::InvalidArgument("unexpected frame type from shard");
  }
  return DecodeResponse(payload);
}

Result<WireResponse> Router::CallShard(
    size_t shard, std::span<const uint8_t> request_bytes) {
  for (size_t attempt = 0;; ++attempt) {
    auto response = CallShardOnce(shard, request_bytes);
    if (response.ok()) return response;

    // Transport failures (peer gone, reset, deadline) are worth a
    // reconnect-and-resend: the shard may have restarted. Everything else
    // — including a kError frame a live server sent — is final.
    const StatusCode code = response.status().code();
    const bool transport = code == StatusCode::kNotFound ||
                           code == StatusCode::kIOError ||
                           code == StatusCode::kDeadlineExceeded;
    connections_[shard].Close();
    if (!transport || attempt >= options_.retries) {
      stats_.failures++;
      return response;
    }
    stats_.retries++;
  }
}

Result<AnswerSet> Router::Query(const UncertainObject& issuer,
                                QueryMethod method, const BatchSpec& spec,
                                WireServeStats* last_stats) {
  stats_.queries++;

  WireRequest request;
  request.issuer_id = issuer.id();
  request.issuer_pdf = issuer.pdf_variant();
  request.method = method;
  request.spec = spec;
  ByteWriter writer;
  ILQ_RETURN_NOT_OK(EncodeRequest(request, &writer));
  const std::vector<uint8_t> request_bytes = std::move(writer).Take();

  // Identical routing to ShardedEngine::Run — same function, same map
  // shape — so the fleet evaluates exactly the shards the in-process
  // engine would.
  const std::vector<size_t> routed =
      RouteOverShardMap(options_.map, method, issuer, spec.query);

  AnswerSet merged;
  for (const size_t shard : routed) {
    auto response = CallShard(shard, request_bytes);
    ILQ_RETURN_NOT_OK(response.status());
    WireResponse& r = *response;
    merged.insert(merged.end(), r.answers.begin(), r.answers.end());
    if (last_stats != nullptr) *last_stats = r.stats;
  }
  CanonicalizeAnswers(&merged);
  return merged;
}

// ---- Continuous sessions --------------------------------------------------

namespace {

// Per-shard continuous responses → one ContinuousAnswer: answers merged
// and canonicalized (disjoint shards — the same merge Query() does),
// valid regions intersected (the merged answer only holds where EVERY
// shard's does), revalidated flags ANDed, epochs maxed. Zero responses
// (no relevant shard) merge to an empty answer with an empty valid
// region, so a client never reuses it.
ContinuousAnswer MergeContinuousResponses(
    std::vector<WireContinuousResponse>& responses) {
  ContinuousAnswer merged;
  bool first = true;
  for (WireContinuousResponse& r : responses) {
    merged.answers.insert(merged.answers.end(), r.response.answers.begin(),
                          r.response.answers.end());
    merged.valid_region = first
                              ? r.valid_region
                              : merged.valid_region.Intersection(
                                    r.valid_region);
    merged.revalidated = first ? r.revalidated
                               : (merged.revalidated && r.revalidated);
    merged.epoch = std::max(merged.epoch, r.response.stats.epoch);
    first = false;
  }
  CanonicalizeAnswers(&merged.answers);
  return merged;
}

}  // namespace

Router::ContinuousSession::ContinuousSession()
    : issuer_pdf(
          UniformRectPdf::Make(Rect(0.0, 1.0, 0.0, 1.0)).ValueOrDie()) {}

Result<WireContinuousResponse> Router::CallShardContinuousOnce(
    size_t shard, FrameType type, std::span<const uint8_t> payload) {
  ILQ_RETURN_NOT_OK(EnsureConnected(shard));
  Socket& conn = connections_[shard];
  stats_.shard_calls++;

  Status status = WriteFrame(conn, type, payload);
  if (!status.ok()) return status;

  FrameType reply = FrameType::kContinuousResponse;
  std::vector<uint8_t> reply_payload;
  status = ReadFrame(conn, options_.max_frame_bytes, &reply, &reply_payload);
  if (!status.ok()) return status;

  if (reply == FrameType::kError) {
    Status server_error = Status::OK();
    ILQ_RETURN_NOT_OK(DecodeError(reply_payload, &server_error));
    return server_error;
  }
  if (reply != FrameType::kContinuousResponse) {
    return Status::InvalidArgument("unexpected frame type from shard");
  }
  return DecodeContinuousResponse(reply_payload);
}

Result<WireContinuousResponse> Router::CallShardContinuous(
    size_t shard, FrameType type, std::span<const uint8_t> payload) {
  for (size_t attempt = 0;; ++attempt) {
    auto response = CallShardContinuousOnce(shard, type, payload);
    if (response.ok()) return response;

    // Only kIOError/kDeadlineExceeded are retried here. kNotFound — a
    // clean close OR a live server that does not know the session — is
    // the caller's re-register signal; and unlike CallShard, a semantic
    // kError must NOT close the connection: it is alive and carries the
    // server half of every OTHER session this router multiplexes on it.
    const StatusCode code = response.status().code();
    const bool transport = code == StatusCode::kIOError ||
                           code == StatusCode::kDeadlineExceeded;
    if (!transport || attempt >= options_.retries) {
      if (transport) {
        connections_[shard].Close();
        stats_.failures++;
      }
      return response;
    }
    connections_[shard].Close();
    stats_.retries++;
  }
}

Result<std::vector<uint8_t>> Router::EncodeRegisterPayload(
    const ContinuousSession& session) const {
  WireContinuousRequest request;
  request.subscription_id = session.wire_id;
  request.request.issuer_id = session.issuer_id;
  request.request.issuer_pdf = session.issuer_pdf;
  request.request.method = session.method;
  request.request.spec = session.spec;
  ByteWriter writer;
  ILQ_RETURN_NOT_OK(EncodeContinuousRequest(request, &writer));
  return std::move(writer).Take();
}

Status Router::RegisterOnShard(
    ContinuousSession& session, size_t shard,
    std::vector<WireContinuousResponse>* responses) {
  auto payload = EncodeRegisterPayload(session);
  ILQ_RETURN_NOT_OK(payload.status());
  auto response =
      CallShardContinuous(shard, FrameType::kRegister, *payload);
  ILQ_RETURN_NOT_OK(response.status());
  responses->push_back(*std::move(response));
  return Status::OK();
}

void Router::UnregisterOnShards(const ContinuousSession& session) {
  ByteWriter writer;
  if (!EncodeUnregister(session.wire_id, &writer).ok()) return;
  const std::vector<uint8_t> payload = std::move(writer).Take();
  for (const size_t shard : session.shards) {
    (void)CallShardContinuous(shard, FrameType::kUnregister, payload);
  }
}

Result<Router::RegisteredContinuous> Router::RegisterContinuous(
    QueryMethod method, const BatchSpec& spec,
    const UncertainObject& issuer) {
  ContinuousSession session;
  session.wire_id = next_wire_id_++;
  session.method = method;
  session.spec = spec;
  session.issuer_id = issuer.id();
  session.issuer_pdf = issuer.pdf_variant();
  session.shards =
      RouteOverShardMap(options_.map, method, issuer, spec.query);
  std::sort(session.shards.begin(), session.shards.end());

  // A failure mid-fan-out abandons any half-registered server sessions;
  // they die with their connections (or idle under a wire id this router
  // will never reuse — the counter only grows).
  std::vector<WireContinuousResponse> responses;
  for (const size_t shard : session.shards) {
    ILQ_RETURN_NOT_OK(RegisterOnShard(session, shard, &responses));
  }

  RegisteredContinuous registered;
  registered.id = session.wire_id;
  registered.answer = MergeContinuousResponses(responses);
  continuous_.emplace(registered.id, std::move(session));
  stats_.continuous_registers++;
  return registered;
}

Result<ContinuousAnswer> Router::UpdateContinuous(
    SubscriptionId id, const UncertainObject& issuer) {
  const auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("unknown continuous session id");
  }
  ContinuousSession& session = it->second;
  if (issuer.id() != session.issuer_id) {
    return Status::InvalidArgument(
        "update issuer id " + std::to_string(issuer.id()) +
        " does not match the registered issuer " +
        std::to_string(session.issuer_id));
  }
  stats_.continuous_updates++;
  session.issuer_pdf = issuer.pdf_variant();

  std::vector<size_t> routed =
      RouteOverShardMap(options_.map, session.method, issuer,
                        session.spec.query);
  std::sort(routed.begin(), routed.end());
  const bool covered =
      std::includes(session.shards.begin(), session.shards.end(),
                    routed.begin(), routed.end());

  std::vector<WireContinuousResponse> responses;
  if (!covered) {
    // The position escaped the registered shard set: close the session
    // everywhere (best effort) and re-open it at the new position under a
    // fresh wire id (plain re-registration would collide on shards in
    // both the old and new sets).
    stats_.continuous_reregisters++;
    UnregisterOnShards(session);
    session.wire_id = next_wire_id_++;
    session.shards = std::move(routed);
    for (const size_t shard : session.shards) {
      ILQ_RETURN_NOT_OK(RegisterOnShard(session, shard, &responses));
    }
    return MergeContinuousResponses(responses);
  }

  // Update every REGISTERED shard, not just the currently routed ones: a
  // registered-but-not-routed shard replays the same geometric range
  // search the monolith would run over its slice and answers empty, so
  // the union stays exact — and its session stays warm for when the
  // issuer swings back.
  WireContinuousUpdate update;
  update.subscription_id = session.wire_id;
  update.issuer_id = session.issuer_id;
  update.issuer_pdf = session.issuer_pdf;
  ByteWriter writer;
  ILQ_RETURN_NOT_OK(EncodeContinuousUpdate(update, &writer));
  const std::vector<uint8_t> payload = std::move(writer).Take();

  for (const size_t shard : session.shards) {
    auto response =
        CallShardContinuous(shard, FrameType::kContinuousUpdate, payload);
    if (!response.ok() &&
        response.status().code() == StatusCode::kNotFound) {
      // This shard lost its half of the session — the connection (and the
      // per-connection table) was re-established, or the shard server
      // restarted. Re-register it at the current position; basis reuse
      // across the churn is the server-side answer cache's business.
      stats_.continuous_reregisters++;
      ILQ_RETURN_NOT_OK(RegisterOnShard(session, shard, &responses));
      continue;
    }
    ILQ_RETURN_NOT_OK(response.status());
    responses.push_back(*std::move(response));
  }
  return MergeContinuousResponses(responses);
}

Status Router::UnregisterContinuous(SubscriptionId id) {
  const auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::NotFound("unknown continuous session id");
  }
  UnregisterOnShards(it->second);
  continuous_.erase(it);
  return Status::OK();
}

}  // namespace ilq
