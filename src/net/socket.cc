#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace ilq {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// connect(2) bounded by timeout_ms via non-blocking connect + poll;
// timeout_ms <= 0 means the plain blocking call. The socket is restored
// to blocking mode on success — everything above this file assumes
// blocking I/O with SO_RCVTIMEO.
Status ConnectFd(int fd, const sockaddr* addr, socklen_t addrlen,
                 int timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, addr, addrlen) != 0) {
      return Status::IOError(Errno("connect"));
    }
    return Status::OK();
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError(Errno("fcntl(O_NONBLOCK)"));
  }
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) return Status::IOError(Errno("connect"));
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) {
      return Status::DeadlineExceeded("connect timeout after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (rc < 0) {
      if (errno == EINTR) {
        return Status::DeadlineExceeded("connect poll interrupted");
      }
      return Status::IOError(Errno("poll(connect)"));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return Status::IOError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      errno = err;
      return Status::IOError(Errno("connect"));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::IOError(Errno("fcntl(restore blocking)"));
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved);
  if (rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(rc));
  }

  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(Errno("socket"));
      continue;
    }
    last = ConnectFd(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
    if (last.ok()) {
      freeaddrinfo(resolved);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    ::close(fd);
  }
  freeaddrinfo(resolved);
  return last;
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket not open");
  if (timeout_ms < 0) {
    return Status::InvalidArgument("negative receive timeout");
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

Status Socket::SendAll(std::span<const uint8_t> data) {
  if (fd_ < 0) return Status::FailedPrecondition("socket not open");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvExact(uint8_t* out, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("socket not open");
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IOError("connection closed mid-read (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("receive timeout after " +
                                        std::to_string(got) + "/" +
                                        std::to_string(n) + " bytes");
      }
      return Status::IOError(Errno("recv"));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket& ListenSocket::operator=(ListenSocket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = std::exchange(o.fd_, -1);
    port_ = std::exchange(o.port_, static_cast<uint16_t>(0));
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));

  // SO_REUSEADDR lets a restarted shard rebind its port while old
  // connections linger in TIME_WAIT — asserted by the restart fault test.
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const Status status = Status::IOError(Errno("setsockopt(SO_REUSEADDR)"));
    ::close(fd);
    return status;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(Errno("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = Status::IOError(Errno("listen"));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status = Status::IOError(Errno("getsockname"));
    ::close(fd);
    return status;
  }

  ListenSocket listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> ListenSocket::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener not open");

  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return Status::DeadlineExceeded("no connection pending");
  if (rc < 0) {
    if (errno == EINTR) return Status::DeadlineExceeded("poll interrupted");
    return Status::IOError(Errno("poll"));
  }

  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Status::IOError(Errno("accept"));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

}  // namespace ilq
