#include "net/shard_server.h"

#include <algorithm>
#include <future>
#include <span>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "net/frame.h"
#include "object/uncertain_object.h"
#include "wire/codec.h"

namespace ilq {

ShardServer::ShardServer(const ShardedEngine& engine,
                         ShardServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      async_(engine, options_.serve),
      subscriptions_(&async_, options_.subscription) {
  options_.max_connections = std::max<size_t>(options_.max_connections, 1);
}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  auto listener = ListenSocket::Listen(options_.port);
  ILQ_RETURN_NOT_OK(listener.status());
  listener_ = std::move(listener).ValueOrDie();
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // The accept loop notices stopping_ within its poll interval; join it
  // BEFORE touching the listener so no thread ever closes an fd another
  // thread is polling.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Unblock every handler stuck in a read, then join them. In-flight
  // queries run to completion inside the handlers (future.get() before the
  // shutdown is visible on their socket), so their responses go out.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) conn->socket.ShutdownBoth();
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (connections_.empty()) break;
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  async_.Shutdown();
}

ShardServerStats ShardServer::stats() const {
  ShardServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  stats.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  stats.requests_rejected =
      requests_rejected_.load(std::memory_order_relaxed);
  stats.io_errors = io_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.active_connections = connections_.size();
  }
  return stats;
}

void ShardServer::AcceptLoop() {
  // 50 ms poll interval bounds how long Stop() waits on this thread.
  constexpr int kAcceptPollMs = 50;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(kAcceptPollMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // poll tick; re-check the stop flag
      }
      break;  // listener closed (Stop) or broken
    }
    Socket socket = std::move(accepted).ValueOrDie();

    ReapFinishedConnections();
    bool at_limit = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (connections_.size() >= options_.max_connections) {
        connections_refused_.fetch_add(1, std::memory_order_relaxed);
        at_limit = true;
      }
    }
    if (at_limit) {
      // Send outside the lock: a peer with a full receive buffer can
      // block this send, and stats()/reaping must not stall behind it.
      SendErrorFrame(socket, Status::FailedPrecondition(
                                 "server at connection limit"));
      continue;  // socket closes on scope exit
    }

    if (options_.recv_timeout_ms > 0) {
      (void)socket.SetRecvTimeout(options_.recv_timeout_ms);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(socket);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void ShardServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void ShardServer::HandleConnection(Connection* conn) {
  while (!stopping_.load(std::memory_order_acquire)) {
    FrameType type = FrameType::kRequest;
    std::vector<uint8_t> payload;
    const Status status =
        ReadFrame(conn->socket, options_.max_frame_bytes, &type, &payload);

    if (status.code() == StatusCode::kNotFound) break;  // clean close
    if (status.code() == StatusCode::kDeadlineExceeded) {
      // Slow peer: tell it why (best effort) and drop the connection.
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendErrorFrame(conn->socket, status);
      break;
    }
    if (status.code() == StatusCode::kOutOfRange) {
      // Oversized or malformed frame header — the stream cannot be
      // resynced past an unread payload, so report and close.
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendErrorFrame(conn->socket, status);
      break;
    }
    if (status.code() == StatusCode::kInvalidArgument) {
      // Bad version / frame type: the six header bytes were consumed but
      // the payload length is untrusted — close rather than resync.
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendErrorFrame(conn->socket, status);
      break;
    }
    if (!status.ok()) {  // peer vanished mid-frame
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    bool alive = true;
    switch (type) {
      case FrameType::kRequest:
        alive = ServeRequest(conn, payload);
        break;
      case FrameType::kRegister:
        alive = ServeRegister(conn, payload);
        break;
      case FrameType::kContinuousUpdate:
        alive = ServeContinuousUpdate(conn, payload);
        break;
      case FrameType::kUnregister:
        alive = ServeUnregister(conn, payload);
        break;
      default:
        // kResponse/kContinuousResponse/kError from a client. The frame
        // boundary is intact — reject this message, keep serving.
        requests_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendErrorFrame(conn->socket,
                       Status::InvalidArgument("expected a request frame"));
        break;
    }
    if (!alive) break;
  }
  // The connection's continuous sessions die with it (the router
  // re-registers after a reconnect; the answer cache's region entries —
  // not these sessions — carry basis reuse across the churn).
  for (const auto& [client_id, entry] : conn->sessions) {
    (void)subscriptions_.Unregister(entry.id);
  }
  conn->sessions.clear();
  // Send FIN so the peer sees EOF now, but leave the fd open: Stop() may
  // concurrently ShutdownBoth() this socket, and only the Connection's
  // destructor (which runs after this thread is joined) may close it.
  conn->socket.ShutdownBoth();
  conn->done.store(true, std::memory_order_release);
}

bool ShardServer::ServeRequest(Connection* conn,
                               std::span<const uint8_t> payload) {
  auto request = DecodeRequest(payload);
  if (!request.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, request.status());
    return true;  // decode errors are per-message; connection stays up
  }

  // Rebuild the issuer exactly like the in-process path (MakeIssuer):
  // id + pdf from the wire, U-catalog from this engine's ladder.
  UncertainObject issuer(request->issuer_id,
                         std::move(request->issuer_pdf));
  const Status catalog_status =
      issuer.BuildCatalog(engine_.config().engine.catalog_values);
  if (!catalog_status.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, catalog_status);
    return true;
  }

  Stopwatch watch;
  AnswerSet answers;
  if (stopping_.load(std::memory_order_acquire)) {
    SendErrorFrame(conn->socket,
                   Status::FailedPrecondition("server draining"));
    return false;
  }
  answers = async_.Submit(issuer, request->spec, request->method).get();

  WireResponse response;
  response.answers = std::move(answers);
  const ServeStats serve = async_.stats();
  response.stats.epoch = engine_.epoch();
  response.stats.server_ms = watch.ElapsedMillis();
  response.stats.submitted = serve.submitted;
  response.stats.completed = serve.completed;
  response.stats.pending = serve.pending;
  response.stats.p50_ms = serve.p50_ms;
  response.stats.p95_ms = serve.p95_ms;
  response.stats.p99_ms = serve.p99_ms;

  ByteWriter writer;
  const Status encode_status = EncodeResponse(response, &writer);
  if (!encode_status.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, encode_status);
    return true;
  }
  const std::vector<uint8_t> bytes = std::move(writer).Take();
  if (!WriteFrame(conn->socket, FrameType::kResponse, bytes).ok()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShardServer::ServeRegister(Connection* conn,
                                std::span<const uint8_t> payload) {
  auto request = DecodeContinuousRequest(payload);
  if (!request.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, request.status());
    return true;
  }
  if (conn->sessions.count(request->subscription_id) != 0) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket,
                   Status::AlreadyExists(
                       "subscription id " +
                       std::to_string(request->subscription_id) +
                       " already registered on this connection"));
    return true;
  }

  // Rebuild the issuer exactly like the one-shot path.
  UncertainObject issuer(request->request.issuer_id,
                         std::move(request->request.issuer_pdf));
  const Status catalog_status =
      issuer.BuildCatalog(engine_.config().engine.catalog_values);
  if (!catalog_status.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, catalog_status);
    return true;
  }

  if (stopping_.load(std::memory_order_acquire)) {
    SendErrorFrame(conn->socket,
                   Status::FailedPrecondition("server draining"));
    return false;
  }
  Stopwatch watch;
  auto registered = subscriptions_.Register(request->request.method,
                                            request->request.spec, issuer);
  if (!registered.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, registered.status());
    return true;
  }
  conn->sessions[request->subscription_id] = {registered->id, issuer.id()};
  return SendContinuousResponse(conn, request->subscription_id,
                                registered->answer, watch.ElapsedMillis());
}

bool ShardServer::ServeContinuousUpdate(Connection* conn,
                                        std::span<const uint8_t> payload) {
  auto update = DecodeContinuousUpdate(payload);
  if (!update.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, update.status());
    return true;
  }
  const auto it = conn->sessions.find(update->subscription_id);
  if (it == conn->sessions.end()) {
    // The kNotFound the router re-registers on (reconnects, restarts).
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket,
                   Status::NotFound("unknown subscription id " +
                                    std::to_string(update->subscription_id)));
    return true;
  }
  if (update->issuer_id != it->second.issuer_id) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(
        conn->socket,
        Status::InvalidArgument(
            "update issuer id " + std::to_string(update->issuer_id) +
            " does not match the registered issuer " +
            std::to_string(it->second.issuer_id)));
    return true;
  }

  UncertainObject issuer(update->issuer_id, std::move(update->issuer_pdf));
  const Status catalog_status =
      issuer.BuildCatalog(engine_.config().engine.catalog_values);
  if (!catalog_status.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, catalog_status);
    return true;
  }

  if (stopping_.load(std::memory_order_acquire)) {
    SendErrorFrame(conn->socket,
                   Status::FailedPrecondition("server draining"));
    return false;
  }
  Stopwatch watch;
  auto answer = subscriptions_.UpdatePosition(it->second.id, issuer);
  if (!answer.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, answer.status());
    return true;
  }
  return SendContinuousResponse(conn, update->subscription_id,
                                *std::move(answer), watch.ElapsedMillis());
}

bool ShardServer::ServeUnregister(Connection* conn,
                                  std::span<const uint8_t> payload) {
  auto subscription_id = DecodeUnregister(payload);
  if (!subscription_id.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, subscription_id.status());
    return true;
  }
  const auto it = conn->sessions.find(*subscription_id);
  if (it == conn->sessions.end()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket,
                   Status::NotFound("unknown subscription id " +
                                    std::to_string(*subscription_id)));
    return true;
  }
  (void)subscriptions_.Unregister(it->second.id);
  conn->sessions.erase(it);
  // Acknowledge with an empty continuous response (epoch = current).
  ContinuousAnswer closed;
  closed.epoch = engine_.epoch();
  return SendContinuousResponse(conn, *subscription_id, closed, 0.0);
}

bool ShardServer::SendContinuousResponse(Connection* conn,
                                         uint64_t subscription_id,
                                         const ContinuousAnswer& answer,
                                         double server_ms) {
  WireContinuousResponse response;
  response.subscription_id = subscription_id;
  response.revalidated = answer.revalidated;
  response.valid_region = answer.valid_region;
  response.response.answers = answer.answers;
  const ServeStats serve = subscriptions_.stats();
  // The basis epoch the answers are coherent with — NOT engine_.epoch(),
  // which may already have moved past it.
  response.response.stats.epoch = answer.epoch;
  response.response.stats.server_ms = server_ms;
  response.response.stats.submitted = serve.submitted;
  response.response.stats.completed = serve.completed;
  response.response.stats.pending = serve.pending;
  response.response.stats.p50_ms = serve.p50_ms;
  response.response.stats.p95_ms = serve.p95_ms;
  response.response.stats.p99_ms = serve.p99_ms;

  ByteWriter writer;
  const Status encode_status = EncodeContinuousResponse(response, &writer);
  if (!encode_status.ok()) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendErrorFrame(conn->socket, encode_status);
    return true;
  }
  const std::vector<uint8_t> bytes = std::move(writer).Take();
  if (!WriteFrame(conn->socket, FrameType::kContinuousResponse, bytes)
           .ok()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardServer::SendErrorFrame(Socket& socket, const Status& error) {
  ByteWriter writer;
  if (!EncodeError(error, &writer).ok()) return;
  const std::vector<uint8_t> bytes = std::move(writer).Take();
  (void)WriteFrame(socket, FrameType::kError, bytes);
}

}  // namespace ilq
