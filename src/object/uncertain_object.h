// Uncertain objects O1..On (§3.1): a closed uncertainty region plus a pdf
// over it (Definitions 1–2), optionally carrying a pre-computed U-catalog
// for constrained-query pruning (§5).

#ifndef ILQ_OBJECT_UNCERTAIN_OBJECT_H_
#define ILQ_OBJECT_UNCERTAIN_OBJECT_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "object/point_object.h"
#include "object/ucatalog.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief An object whose location is known only as a pdf over an
/// uncertainty region.
///
/// Copyable (the pdf is deep-cloned) so datasets behave like value
/// containers.
class UncertainObject {
 public:
  /// Takes ownership of \p pdf; \p pdf must be non-null.
  UncertainObject(ObjectId id, std::unique_ptr<UncertaintyPdf> pdf);

  UncertainObject(const UncertainObject& o);
  UncertainObject& operator=(const UncertainObject& o);
  UncertainObject(UncertainObject&&) noexcept = default;
  UncertainObject& operator=(UncertainObject&&) noexcept = default;

  ObjectId id() const { return id_; }
  const UncertaintyPdf& pdf() const { return *pdf_; }

  /// Bounding box of the uncertainty region Ui. For rectangular regions
  /// (the paper's assumption) this *is* Ui.
  const Rect& region() const { return region_; }

  /// Pre-computes the U-catalog at the given probability values (§5.1).
  Status BuildCatalog(const std::vector<double>& values);

  /// The pre-computed catalog, or nullptr if BuildCatalog was not called.
  const UCatalog* catalog() const {
    return catalog_.has_value() ? &*catalog_ : nullptr;
  }

 private:
  ObjectId id_;
  std::unique_ptr<UncertaintyPdf> pdf_;
  Rect region_;
  std::optional<UCatalog> catalog_;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_UNCERTAIN_OBJECT_H_
