// Uncertain objects O1..On (§3.1): a closed uncertainty region plus a pdf
// over it (Definitions 1–2), optionally carrying a pre-computed U-catalog
// for constrained-query pruning (§5).

#ifndef ILQ_OBJECT_UNCERTAIN_OBJECT_H_
#define ILQ_OBJECT_UNCERTAIN_OBJECT_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "object/point_object.h"
#include "object/ucatalog.h"
#include "prob/pdf.h"
#include "prob/pdf_variant.h"

namespace ilq {

/// \brief An object whose location is known only as a pdf over an
/// uncertainty region.
///
/// The pdf is stored as a PdfVariant so the evaluators can std::visit once
/// per object and run monomorphized qualification kernels (prob/
/// pdf_variant.h); pdf() still exposes the UncertaintyPdf& view for code
/// written against the virtual interface. Copyable (the variant deep-clones
/// an AnyPdf alternative) so datasets behave like value containers.
class UncertainObject {
 public:
  /// Takes ownership of \p pdf; \p pdf must be non-null. Concrete closed-
  /// world pdfs land on the variant fast path, anything else is wrapped in
  /// AnyPdf (see MakePdfVariant).
  UncertainObject(ObjectId id, std::unique_ptr<UncertaintyPdf> pdf);

  /// Directly adopts an already-built variant.
  UncertainObject(ObjectId id, PdfVariant pdf);

  ObjectId id() const { return id_; }

  /// The UncertaintyPdf& view of the pdf (one std::visit per call; prefer
  /// pdf_variant() in per-sample loops). Valid while this object lives.
  const UncertaintyPdf& pdf() const { return AsUncertaintyPdf(pdf_); }

  /// The pdf as a variant — the devirtualized fast path the evaluators
  /// monomorphize over.
  const PdfVariant& pdf_variant() const { return pdf_; }

  /// Bounding box of the uncertainty region Ui. For rectangular regions
  /// (the paper's assumption) this *is* Ui.
  const Rect& region() const { return region_; }

  /// Pre-computes the U-catalog at the given probability values (§5.1).
  Status BuildCatalog(const std::vector<double>& values);

  /// The pre-computed catalog, or nullptr if BuildCatalog was not called.
  const UCatalog* catalog() const {
    return catalog_.has_value() ? &*catalog_ : nullptr;
  }

 private:
  ObjectId id_;
  PdfVariant pdf_;
  Rect region_;
  std::optional<UCatalog> catalog_;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_UNCERTAIN_OBJECT_H_
