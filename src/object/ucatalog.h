// U-catalogs (§5.1, after [Tao et al. VLDB'05]): since p-bounds cannot be
// pre-computed for every p, each uncertain object stores a small table of
// {value, p-bound} tuples. Queries then use the best catalogued value on the
// conservative side of the requested threshold: the largest M ≤ Qp for
// pruning bounds, or the smallest M ≥ Qp for Strategy 3's products.

#ifndef ILQ_OBJECT_UCATALOG_H_
#define ILQ_OBJECT_UCATALOG_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "object/pbound.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief A sorted table of probability values and their pre-computed
/// p-bounds for one uncertain object (or, merged, for a PTI node).
class UCatalog {
 public:
  UCatalog() = default;

  /// Pre-computes p-bounds of \p pdf at each of \p values. Values must be
  /// within [0, 1] and include 0 (the region boundary); duplicates are
  /// removed and the list is sorted.
  static Result<UCatalog> Make(const UncertaintyPdf& pdf,
                               std::vector<double> values);

  /// Evenly spaced catalog 0, 1/(n−1), …, 1 with \p n ≥ 2 entries. The
  /// paper's experiments use n = 11 (steps of 0.1, §6.1); §5.2 mentions a
  /// six-entry catalog.
  static std::vector<double> EvenlySpacedValues(size_t n);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double value(size_t i) const { return values_[i]; }
  const PBound& bound(size_t i) const { return bounds_[i]; }
  const std::vector<double>& values() const { return values_; }

  /// Index of the largest catalogued value ≤ p. Always exists because 0 is
  /// catalogued.
  size_t FloorIndex(double p) const;

  /// Index of the smallest catalogued value ≥ p, if any.
  std::optional<size_t> CeilIndex(double p) const;

  /// Bound at FloorIndex(p) — the conservative pruning bound for threshold
  /// p (mass beyond it is ≤ floor-value ≤ p).
  const PBound& FloorBound(double p) const { return bounds_[FloorIndex(p)]; }

  /// True when this catalog has exactly the same value ladder as \p o —
  /// required for PTI node merging.
  bool SameValues(const UCatalog& o) const { return values_ == o.values_; }

  /// Starts an all-empty catalog with the given value ladder, for PTI node
  /// accumulation via MergeFrom.
  static UCatalog EmptyLike(const UCatalog& proto);

  /// Loosens every bound to also cover \p o's bounds (same value ladder
  /// required; checked).
  void MergeFrom(const UCatalog& o);

 private:
  std::vector<double> values_;  // ascending, starts at 0
  std::vector<PBound> bounds_;  // parallel to values_
  bool merged_initialized_ = true;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_UCATALOG_H_
