// Mutable catalogs: epoch-versioned object sets for update-heavy serving.
//
// Everything above this layer (indexes, QueryEngine, ShardedEngine) used to
// swallow its object vectors at Build and stay immutable forever. A Catalog
// makes the object sets first-class mutable state while keeping every
// reader lock-free: the points + uncertains live in an immutable
// CatalogSnapshot published through an atomic shared_ptr, writers build the
// next snapshot copy-on-write and publish it with a monotone epoch bump
// (RCU-style — in-flight readers keep the snapshot they loaded, new readers
// see the new epoch, nobody blocks).
//
// The update vocabulary is a small value type (UpdateOp / UpdateBatch:
// insert / erase / move for both object kinds) shared by the whole stack —
// datagen generates churn streams of it, QueryEngine::ApplyUpdates consumes
// it with index maintenance, ShardedEngine routes it across shards.
//
// Id contract: updates address objects by ObjectId, so update support
// requires ids to be unique within each object kind (points and uncertains
// are separate id namespaces). Snapshots built from datasets with duplicate
// ids still work for read-only use; the positional maps then keep the last
// occurrence and updates to a duplicated id are rejected as ambiguous.

#ifndef ILQ_OBJECT_CATALOG_H_
#define ILQ_OBJECT_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "object/point_object.h"
#include "object/uncertain_object.h"
#include "prob/pdf_variant.h"

namespace ilq {

/// \brief The six update operations the stack understands.
enum class UpdateKind : uint8_t {
  kInsertPoint,      ///< new point object (id must be fresh)
  kErasePoint,       ///< remove a point object by id
  kMovePoint,        ///< relocate a point object (id unchanged)
  kInsertUncertain,  ///< new uncertain object (id must be fresh)
  kEraseUncertain,   ///< remove an uncertain object by id
  kMoveUncertain,    ///< replace an uncertain object's pdf (region follows)
};

/// Short stable name ("insert_point", ...) for logs and test failures.
const char* UpdateKindName(UpdateKind kind);

/// \brief One update. A plain value: copyable (PdfVariant deep-clones an
/// AnyPdf alternative), so batches behave like ordinary vectors.
struct UpdateOp {
  UpdateKind kind = UpdateKind::kInsertPoint;
  ObjectId id = 0;
  Point location;                 ///< kInsertPoint / kMovePoint
  std::optional<PdfVariant> pdf;  ///< kInsertUncertain / kMoveUncertain

  static UpdateOp InsertPoint(ObjectId id, const Point& location);
  static UpdateOp ErasePoint(ObjectId id);
  static UpdateOp MovePoint(ObjectId id, const Point& location);
  static UpdateOp InsertUncertain(ObjectId id, PdfVariant pdf);
  static UpdateOp EraseUncertain(ObjectId id);
  static UpdateOp MoveUncertain(ObjectId id, PdfVariant pdf);
};

/// One writer round: ops apply in order, all-or-nothing per Apply call.
using UpdateBatch = std::vector<UpdateOp>;

/// \brief An immutable, epoch-stamped view of both object sets.
///
/// The positional maps exist for the layers above: the uncertain indexes
/// (plain R-tree and PTI) store *positions into uncertains*, and updates
/// must locate an object by id in O(1). Erase is swap-erase (the last
/// element fills the hole), so positions are dense but not stable across
/// epochs — which is fine, because every epoch carries its own indexes.
struct CatalogSnapshot {
  uint64_t epoch = 0;
  std::vector<PointObject> points;
  std::vector<UncertainObject> uncertains;
  std::unordered_map<ObjectId, uint32_t> point_pos;      // id -> position
  std::unordered_map<ObjectId, uint32_t> uncertain_pos;  // id -> position

  const PointObject* FindPoint(ObjectId id) const;
  const UncertainObject* FindUncertain(ObjectId id) const;
};

using CatalogSnapshotPtr = std::shared_ptr<const CatalogSnapshot>;

/// \brief Index-maintenance hooks: ApplyCatalogUpdates reports every
/// physical mutation so the caller can keep derived structures (R-trees,
/// PTI) in lock-step with the object vectors.
///
/// Uncertain hooks carry the object's *position* because that is what the
/// uncertain indexes store; UncertainRelocated fires when swap-erase moves
/// the (unrelated) last object into the erased hole.
class CatalogListener {
 public:
  virtual ~CatalogListener() = default;
  virtual void PointInserted(const PointObject& object) {
    (void)object;
  }
  virtual void PointErased(const PointObject& object) { (void)object; }
  virtual void UncertainInserted(uint32_t pos, const UncertainObject& object) {
    (void)pos;
    (void)object;
  }
  virtual void UncertainErased(uint32_t pos, const UncertainObject& object) {
    (void)pos;
    (void)object;
  }
  virtual void UncertainRelocated(uint32_t from, uint32_t to,
                                  const UncertainObject& object) {
    (void)from;
    (void)to;
    (void)object;
  }
};

/// Builds the snapshot for a pair of datasets (positional maps included),
/// stamped with \p epoch — 0 for a fresh build; a disk-resident engine
/// passes the epoch its catalog image was saved at so the serving tier's
/// version handshake survives the round trip. Never fails; duplicate ids
/// degrade to read-only support (see the id contract above).
CatalogSnapshotPtr MakeCatalogSnapshot(std::vector<PointObject> points,
                                       std::vector<UncertainObject> uncertains,
                                       uint64_t epoch = 0);

/// The copy-on-write step: applies \p batch to a copy of \p prev and
/// returns the next snapshot with epoch + 1. \p prev is never touched, so
/// concurrent readers of it are safe by construction.
///
/// Inserted/moved uncertain objects get a U-catalog built on
/// \p catalog_ladder (skipped when the ladder is empty — engines always
/// pass their resolved ladder so the PTI can index the result).
/// \p listener (optional) observes every physical mutation in order.
///
/// Fails without side effects on the returned snapshot when an op is
/// invalid: inserting an existing id, erasing/moving an unknown id, a
/// missing pdf on an uncertain insert/move, or a U-catalog build error.
/// Listener calls made before the failing op are the caller's to discard
/// (drop the derived copies along with the rejected snapshot).
Result<CatalogSnapshotPtr> ApplyCatalogUpdates(
    const CatalogSnapshot& prev, const UpdateBatch& batch,
    const std::vector<double>& catalog_ladder,
    CatalogListener* listener = nullptr);

/// \brief The standalone object-layer container: an atomically published
/// CatalogSnapshot plus a serialized writer.
///
/// Thread safety: snapshot() / epoch() are wait-free for any number of
/// concurrent readers; Apply serializes writers internally and publishes
/// with release ordering. Readers never observe a partially applied batch —
/// they see the previous epoch or the next, nothing in between.
class Catalog {
 public:
  /// \p catalog_ladder is the U-catalog value ladder for objects inserted
  /// later (may be empty when no layer above needs p-bounds).
  explicit Catalog(std::vector<PointObject> points = {},
                   std::vector<UncertainObject> uncertains = {},
                   std::vector<double> catalog_ladder = {});

  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  /// The current snapshot (acquire load; cheap shared_ptr copy).
  CatalogSnapshotPtr snapshot() const;

  /// Epoch of the current snapshot (0 = as constructed).
  uint64_t epoch() const { return snapshot()->epoch; }

  /// Applies one batch copy-on-write and publishes the next epoch.
  /// All-or-nothing: on error the published snapshot is unchanged.
  Status Apply(const UpdateBatch& batch, CatalogListener* listener = nullptr);

  // Single-op conveniences (each one publishes its own epoch).
  Status InsertPoint(ObjectId id, const Point& location);
  Status ErasePoint(ObjectId id);
  Status MovePoint(ObjectId id, const Point& location);
  Status InsertUncertain(ObjectId id, PdfVariant pdf);
  Status EraseUncertain(ObjectId id);
  Status MoveUncertain(ObjectId id, PdfVariant pdf);

 private:
  struct Control {
    std::atomic<CatalogSnapshotPtr> snap;
    std::mutex writer_mu;
  };

  std::vector<double> ladder_;
  // Heap-held so the Catalog stays movable (atomics are not).
  std::unique_ptr<Control> control_;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_CATALOG_H_
