#include "object/uncertain_object.h"

#include <utility>

namespace ilq {

UncertainObject::UncertainObject(ObjectId id,
                                 std::unique_ptr<UncertaintyPdf> pdf)
    : UncertainObject(id, MakePdfVariant(std::move(pdf))) {}

UncertainObject::UncertainObject(ObjectId id, PdfVariant pdf)
    : id_(id), pdf_(std::move(pdf)), region_(PdfBounds(pdf_)) {}

Status UncertainObject::BuildCatalog(const std::vector<double>& values) {
  Result<UCatalog> cat = UCatalog::Make(pdf(), values);
  if (!cat.ok()) return cat.status();
  catalog_ = std::move(cat).ValueOrDie();
  return Status::OK();
}

}  // namespace ilq
