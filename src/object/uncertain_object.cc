#include "object/uncertain_object.h"

#include "common/logging.h"

namespace ilq {

UncertainObject::UncertainObject(ObjectId id,
                                 std::unique_ptr<UncertaintyPdf> pdf)
    : id_(id), pdf_(std::move(pdf)) {
  ILQ_CHECK(pdf_ != nullptr, "UncertainObject requires a pdf");
  region_ = pdf_->bounds();
}

UncertainObject::UncertainObject(const UncertainObject& o)
    : id_(o.id_),
      pdf_(o.pdf_->Clone()),
      region_(o.region_),
      catalog_(o.catalog_) {}

UncertainObject& UncertainObject::operator=(const UncertainObject& o) {
  if (this != &o) {
    id_ = o.id_;
    pdf_ = o.pdf_->Clone();
    region_ = o.region_;
    catalog_ = o.catalog_;
  }
  return *this;
}

Status UncertainObject::BuildCatalog(const std::vector<double>& values) {
  Result<UCatalog> cat = UCatalog::Make(*pdf_, values);
  if (!cat.ok()) return cat.status();
  catalog_ = std::move(cat).ValueOrDie();
  return Status::OK();
}

}  // namespace ilq
