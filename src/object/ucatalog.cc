#include "object/ucatalog.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ilq {

Result<UCatalog> UCatalog::Make(const UncertaintyPdf& pdf,
                                std::vector<double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("U-catalog needs at least one value");
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.front() < 0.0 || values.back() > 1.0) {
    return Status::InvalidArgument("U-catalog values must lie in [0, 1]");
  }
  if (values.front() != 0.0) {
    return Status::InvalidArgument(
        "U-catalog must include 0 (the uncertainty-region boundary)");
  }
  UCatalog cat;
  cat.values_ = std::move(values);
  cat.bounds_.reserve(cat.values_.size());
  for (double v : cat.values_) {
    cat.bounds_.push_back(PBound::FromPdf(pdf, v));
  }
  return cat;
}

std::vector<double> UCatalog::EvenlySpacedValues(size_t n) {
  ILQ_CHECK(n >= 2, "evenly spaced catalog needs at least 2 values");
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return values;
}

size_t UCatalog::FloorIndex(double p) const {
  ILQ_CHECK(!values_.empty(), "FloorIndex on empty catalog");
  // Last index with value <= p; index 0 holds value 0 so it always exists.
  auto it = std::upper_bound(values_.begin(), values_.end(), p);
  if (it == values_.begin()) return 0;
  return static_cast<size_t>(it - values_.begin()) - 1;
}

std::optional<size_t> UCatalog::CeilIndex(double p) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), p);
  if (it == values_.end()) return std::nullopt;
  return static_cast<size_t>(it - values_.begin());
}

UCatalog UCatalog::EmptyLike(const UCatalog& proto) {
  UCatalog cat;
  cat.values_ = proto.values_;
  cat.bounds_.resize(cat.values_.size());
  cat.merged_initialized_ = false;
  return cat;
}

void UCatalog::MergeFrom(const UCatalog& o) {
  ILQ_CHECK(SameValues(o), "U-catalog merge requires identical value ladders");
  if (!merged_initialized_) {
    bounds_ = o.bounds_;
    merged_initialized_ = true;
    return;
  }
  for (size_t i = 0; i < bounds_.size(); ++i) {
    bounds_[i].UnionWith(o.bounds_[i]);
  }
}

}  // namespace ilq
