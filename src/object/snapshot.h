// CatalogImage — one epoch of the object layer as plain data, the unit
// the multi-process serving tier persists and ships (ROADMAP wire-protocol
// item: shard processes bootstrap from a snapshot file instead of
// re-running datagen).
//
// A snapshot is deliberately *not* an engine: no indexes, no U-catalogs —
// those are deterministic functions of the objects and the EngineConfig, so
// a shard server rebuilds them on load and answers bit-identically to an
// engine built from the original vectors (tests/snapshot_test.cc pins
// this). The binary file format lives in wire/snapshot_codec.h; splitting a
// snapshot into per-shard snapshots lives in serve/partition.h.

#ifndef ILQ_OBJECT_SNAPSHOT_H_
#define ILQ_OBJECT_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "object/point_object.h"
#include "object/uncertain_object.h"

namespace ilq {

/// \brief One epoch of a catalog: the two object sets plus the epoch that
/// produced them (0 for freshly generated data, Catalog::epoch() when
/// exported from a live catalog).
struct CatalogImage {
  uint64_t epoch = 0;
  std::vector<PointObject> points;
  std::vector<UncertainObject> uncertains;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_SNAPSHOT_H_
