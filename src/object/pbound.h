// p-bounds (§5.1, Figure 4): for an uncertain object Oi and a probability p,
// the four lines li(p), ri(p), ti(p), bi(p) such that the probability of Oi
// lying beyond each line (left of li, right of ri, above ti, below bi) is
// exactly p. The 0-bound lines coincide with the uncertainty region's
// boundary. p-bounds are pre-computed into U-catalogs (see ucatalog.h) and
// drive the pruning of constrained queries (§5) and the PTI (§5.3).

#ifndef ILQ_OBJECT_PBOUND_H_
#define ILQ_OBJECT_PBOUND_H_

#include <string>

#include "geometry/rect.h"
#include "prob/pdf.h"

namespace ilq {

/// \brief The four p-bound lines of an uncertain object at one probability
/// value.
///
/// Lines are stored by coordinate: `l` and `r` are x-coordinates, `b` and
/// `t` are y-coordinates. For p < 0.5 the lines bound a non-empty "inner
/// box"; for p > 0.5 the l/r (and b/t) lines cross, which is still
/// meaningful for one-sided mass arguments (mass beyond each line is p).
struct PBound {
  double l = 0.0;  ///< mass strictly left of x = l is p
  double r = 0.0;  ///< mass strictly right of x = r is p
  double b = 0.0;  ///< mass strictly below y = b is p
  double t = 0.0;  ///< mass strictly above y = t is p

  /// Computes the p-bound of \p pdf at probability \p p ∈ [0, 1] from the
  /// marginal quantiles: l = QuantileX(p), r = QuantileX(1−p), etc.
  static PBound FromPdf(const UncertaintyPdf& pdf, double p);

  /// The inner box [l, r] × [b, t]; empty when the lines cross (p > 0.5).
  Rect Box() const { return Rect(l, r, b, t); }

  /// Loosens this bound to also cover \p o (elementwise min/max). This is
  /// the PTI's node-level MBR(m) merge: the merged lines conservatively
  /// bound every child (§5.3).
  void UnionWith(const PBound& o);

  /// True when rectangle \p region lies entirely beyond at least one of the
  /// four lines — in which case the pdf's mass inside \p region is at most
  /// the bound's probability value (the Strategy-1 test of §5.2).
  bool RegionBeyond(const Rect& region) const {
    if (region.IsEmpty()) return true;
    return region.xmax <= l || region.xmin >= r || region.ymax <= b ||
           region.ymin >= t;
  }

  std::string ToString() const;
};

}  // namespace ilq

#endif  // ILQ_OBJECT_PBOUND_H_
