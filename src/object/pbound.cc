#include "object/pbound.h"

#include <algorithm>
#include <cstdio>

namespace ilq {

PBound PBound::FromPdf(const UncertaintyPdf& pdf, double p) {
  PBound out;
  out.l = pdf.QuantileX(p);
  out.r = pdf.QuantileX(1.0 - p);
  out.b = pdf.QuantileY(p);
  out.t = pdf.QuantileY(1.0 - p);
  return out;
}

void PBound::UnionWith(const PBound& o) {
  l = std::min(l, o.l);
  r = std::max(r, o.r);
  b = std::min(b, o.b);
  t = std::max(t, o.t);
}

std::string PBound::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "l=%.6g r=%.6g b=%.6g t=%.6g", l, r, b, t);
  return buf;
}

}  // namespace ilq
