#include "object/catalog.h"

#include <string>
#include <utility>

namespace ilq {
namespace {

Status UnknownId(const char* what, ObjectId id) {
  return Status::NotFound(std::string(what) + " id " + std::to_string(id) +
                          " not present in catalog");
}

Status DuplicateId(const char* what, ObjectId id) {
  return Status::AlreadyExists(std::string(what) + " id " +
                               std::to_string(id) +
                               " already present in catalog");
}

}  // namespace

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsertPoint:
      return "insert_point";
    case UpdateKind::kErasePoint:
      return "erase_point";
    case UpdateKind::kMovePoint:
      return "move_point";
    case UpdateKind::kInsertUncertain:
      return "insert_uncertain";
    case UpdateKind::kEraseUncertain:
      return "erase_uncertain";
    case UpdateKind::kMoveUncertain:
      return "move_uncertain";
  }
  return "unknown";
}

UpdateOp UpdateOp::InsertPoint(ObjectId id, const Point& location) {
  UpdateOp op;
  op.kind = UpdateKind::kInsertPoint;
  op.id = id;
  op.location = location;
  return op;
}

UpdateOp UpdateOp::ErasePoint(ObjectId id) {
  UpdateOp op;
  op.kind = UpdateKind::kErasePoint;
  op.id = id;
  return op;
}

UpdateOp UpdateOp::MovePoint(ObjectId id, const Point& location) {
  UpdateOp op;
  op.kind = UpdateKind::kMovePoint;
  op.id = id;
  op.location = location;
  return op;
}

UpdateOp UpdateOp::InsertUncertain(ObjectId id, PdfVariant pdf) {
  UpdateOp op;
  op.kind = UpdateKind::kInsertUncertain;
  op.id = id;
  op.pdf = std::move(pdf);
  return op;
}

UpdateOp UpdateOp::EraseUncertain(ObjectId id) {
  UpdateOp op;
  op.kind = UpdateKind::kEraseUncertain;
  op.id = id;
  return op;
}

UpdateOp UpdateOp::MoveUncertain(ObjectId id, PdfVariant pdf) {
  UpdateOp op;
  op.kind = UpdateKind::kMoveUncertain;
  op.id = id;
  op.pdf = std::move(pdf);
  return op;
}

const PointObject* CatalogSnapshot::FindPoint(ObjectId id) const {
  const auto it = point_pos.find(id);
  if (it == point_pos.end()) return nullptr;
  return &points[it->second];
}

const UncertainObject* CatalogSnapshot::FindUncertain(ObjectId id) const {
  const auto it = uncertain_pos.find(id);
  if (it == uncertain_pos.end()) return nullptr;
  return &uncertains[it->second];
}

CatalogSnapshotPtr MakeCatalogSnapshot(
    std::vector<PointObject> points,
    std::vector<UncertainObject> uncertains, uint64_t epoch) {
  auto snap = std::make_shared<CatalogSnapshot>();
  snap->epoch = epoch;
  snap->points = std::move(points);
  snap->uncertains = std::move(uncertains);
  snap->point_pos.reserve(snap->points.size());
  for (uint32_t i = 0; i < snap->points.size(); ++i) {
    snap->point_pos[snap->points[i].id] = i;  // duplicates: last wins
  }
  snap->uncertain_pos.reserve(snap->uncertains.size());
  for (uint32_t i = 0; i < snap->uncertains.size(); ++i) {
    snap->uncertain_pos[snap->uncertains[i].id()] = i;
  }
  return snap;
}

namespace {

// Applies one op to the working snapshot, firing listener hooks for every
// physical mutation. The snapshot is private to ApplyCatalogUpdates, so
// partial application on a later failing op never leaks to readers.
Status ApplyOneOp(CatalogSnapshot& snap, const UpdateOp& op,
                  const std::vector<double>& ladder,
                  CatalogListener* listener) {
  switch (op.kind) {
    case UpdateKind::kInsertPoint: {
      if (snap.point_pos.contains(op.id)) return DuplicateId("point", op.id);
      snap.point_pos[op.id] = static_cast<uint32_t>(snap.points.size());
      snap.points.emplace_back(op.id, op.location);
      if (listener) listener->PointInserted(snap.points.back());
      return Status::OK();
    }
    case UpdateKind::kErasePoint: {
      const auto it = snap.point_pos.find(op.id);
      if (it == snap.point_pos.end()) return UnknownId("point", op.id);
      const uint32_t pos = it->second;
      if (listener) listener->PointErased(snap.points[pos]);
      snap.point_pos.erase(it);
      const uint32_t last = static_cast<uint32_t>(snap.points.size()) - 1;
      if (pos != last) {
        snap.points[pos] = snap.points[last];
        snap.point_pos[snap.points[pos].id] = pos;
      }
      snap.points.pop_back();
      return Status::OK();
    }
    case UpdateKind::kMovePoint: {
      const auto it = snap.point_pos.find(op.id);
      if (it == snap.point_pos.end()) return UnknownId("point", op.id);
      PointObject& obj = snap.points[it->second];
      if (listener) listener->PointErased(obj);
      obj.location = op.location;
      if (listener) listener->PointInserted(obj);
      return Status::OK();
    }
    case UpdateKind::kInsertUncertain: {
      if (!op.pdf.has_value()) {
        return Status::InvalidArgument(
            "insert_uncertain op requires a pdf (id " +
            std::to_string(op.id) + ")");
      }
      if (snap.uncertain_pos.contains(op.id)) {
        return DuplicateId("uncertain", op.id);
      }
      const uint32_t pos = static_cast<uint32_t>(snap.uncertains.size());
      snap.uncertains.emplace_back(op.id, *op.pdf);
      if (!ladder.empty()) {
        ILQ_RETURN_NOT_OK(snap.uncertains.back().BuildCatalog(ladder));
      }
      snap.uncertain_pos[op.id] = pos;
      if (listener) listener->UncertainInserted(pos, snap.uncertains[pos]);
      return Status::OK();
    }
    case UpdateKind::kEraseUncertain: {
      const auto it = snap.uncertain_pos.find(op.id);
      if (it == snap.uncertain_pos.end()) {
        return UnknownId("uncertain", op.id);
      }
      const uint32_t pos = it->second;
      if (listener) listener->UncertainErased(pos, snap.uncertains[pos]);
      snap.uncertain_pos.erase(it);
      const uint32_t last =
          static_cast<uint32_t>(snap.uncertains.size()) - 1;
      if (pos != last) {
        snap.uncertains[pos] = snap.uncertains[last];
        snap.uncertain_pos[snap.uncertains[pos].id()] = pos;
        if (listener) {
          listener->UncertainRelocated(last, pos, snap.uncertains[pos]);
        }
      }
      snap.uncertains.pop_back();
      return Status::OK();
    }
    case UpdateKind::kMoveUncertain: {
      if (!op.pdf.has_value()) {
        return Status::InvalidArgument(
            "move_uncertain op requires a pdf (id " + std::to_string(op.id) +
            ")");
      }
      const auto it = snap.uncertain_pos.find(op.id);
      if (it == snap.uncertain_pos.end()) {
        return UnknownId("uncertain", op.id);
      }
      const uint32_t pos = it->second;
      if (listener) listener->UncertainErased(pos, snap.uncertains[pos]);
      UncertainObject replacement(op.id, *op.pdf);
      if (!ladder.empty()) {
        ILQ_RETURN_NOT_OK(replacement.BuildCatalog(ladder));
      }
      snap.uncertains[pos] = std::move(replacement);
      if (listener) listener->UncertainInserted(pos, snap.uncertains[pos]);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace

Result<CatalogSnapshotPtr> ApplyCatalogUpdates(
    const CatalogSnapshot& prev, const UpdateBatch& batch,
    const std::vector<double>& catalog_ladder, CatalogListener* listener) {
  if (!batch.empty() &&
      (prev.point_pos.size() != prev.points.size() ||
       prev.uncertain_pos.size() != prev.uncertains.size())) {
    return Status::FailedPrecondition(
        "catalog has duplicate object ids; updates are ambiguous "
        "(read-only use is still supported)");
  }
  auto next = std::make_shared<CatalogSnapshot>(prev);
  next->epoch = prev.epoch + 1;
  for (size_t i = 0; i < batch.size(); ++i) {
    Status s = ApplyOneOp(*next, batch[i], catalog_ladder, listener);
    if (!s.ok()) {
      return Status(s.code(), "update op #" + std::to_string(i) + " (" +
                                  UpdateKindName(batch[i].kind) +
                                  "): " + s.message());
    }
  }
  return CatalogSnapshotPtr(std::move(next));
}

Catalog::Catalog(std::vector<PointObject> points,
                 std::vector<UncertainObject> uncertains,
                 std::vector<double> catalog_ladder)
    : ladder_(std::move(catalog_ladder)),
      control_(std::make_unique<Control>()) {
  control_->snap.store(
      MakeCatalogSnapshot(std::move(points), std::move(uncertains)),
      std::memory_order_release);
}

CatalogSnapshotPtr Catalog::snapshot() const {
  return control_->snap.load(std::memory_order_acquire);
}

Status Catalog::Apply(const UpdateBatch& batch, CatalogListener* listener) {
  std::lock_guard<std::mutex> lock(control_->writer_mu);
  const CatalogSnapshotPtr prev =
      control_->snap.load(std::memory_order_acquire);
  Result<CatalogSnapshotPtr> next =
      ApplyCatalogUpdates(*prev, batch, ladder_, listener);
  if (!next.ok()) return next.status();
  control_->snap.store(std::move(next).ValueOrDie(),
                       std::memory_order_release);
  return Status::OK();
}

Status Catalog::InsertPoint(ObjectId id, const Point& location) {
  return Apply({UpdateOp::InsertPoint(id, location)});
}

Status Catalog::ErasePoint(ObjectId id) {
  return Apply({UpdateOp::ErasePoint(id)});
}

Status Catalog::MovePoint(ObjectId id, const Point& location) {
  return Apply({UpdateOp::MovePoint(id, location)});
}

Status Catalog::InsertUncertain(ObjectId id, PdfVariant pdf) {
  return Apply({UpdateOp::InsertUncertain(id, std::move(pdf))});
}

Status Catalog::EraseUncertain(ObjectId id) {
  return Apply({UpdateOp::EraseUncertain(id)});
}

Status Catalog::MoveUncertain(ObjectId id, PdfVariant pdf) {
  return Apply({UpdateOp::MoveUncertain(id, std::move(pdf))});
}

}  // namespace ilq
