// Point objects S1..Sm (§3.1): objects whose location is known exactly,
// e.g. gas stations, schools, non-moving users.

#ifndef ILQ_OBJECT_POINT_OBJECT_H_
#define ILQ_OBJECT_POINT_OBJECT_H_

#include <cstdint>

#include "geometry/point.h"

namespace ilq {

/// Stable object identifier used across datasets, indexes and answers.
using ObjectId = uint32_t;

/// \brief An object with a precise point location.
struct PointObject {
  ObjectId id = 0;
  Point location;

  PointObject() = default;
  PointObject(ObjectId oid, const Point& loc) : id(oid), location(loc) {}
};

}  // namespace ilq

#endif  // ILQ_OBJECT_POINT_OBJECT_H_
