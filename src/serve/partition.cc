#include "serve/partition.h"

#include <algorithm>
#include <limits>

namespace ilq {

namespace {

// Recursively assigns idx[begin, end) to shards [shard_begin, shard_begin +
// shard_count). Splits the index span proportionally to the shard counts of
// the two halves along the wider axis of the group's centroid bounding box.
void SplitRange(const std::vector<Point>& centroids, std::vector<size_t>& idx,
                size_t begin, size_t end, uint32_t shard_begin,
                size_t shard_count, std::vector<uint32_t>* assignment) {
  if (shard_count <= 1 || end - begin <= 1) {
    for (size_t i = begin; i < end; ++i) {
      (*assignment)[idx[i]] = shard_begin;
    }
    return;
  }

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (size_t i = begin; i < end; ++i) {
    const Point& c = centroids[idx[i]];
    xmin = std::min(xmin, c.x);
    xmax = std::max(xmax, c.x);
    ymin = std::min(ymin, c.y);
    ymax = std::max(ymax, c.y);
  }
  const bool split_x = (xmax - xmin) >= (ymax - ymin);

  const size_t left_shards = shard_count / 2;
  const size_t right_shards = shard_count - left_shards;
  const size_t n = end - begin;
  // Proportional cut: left group gets ~n * left/total items, at least one
  // per side so no half starves while both still carry shards.
  size_t left_n = n * left_shards / shard_count;
  left_n = std::min(std::max<size_t>(left_n, 1), n - 1);

  // Total order on ties (coordinate, cross coordinate, index) makes the
  // two sides of nth_element unique sets regardless of libc internals.
  const auto cmp = [&](size_t a, size_t b) {
    const Point& pa = centroids[a];
    const Point& pb = centroids[b];
    const double ka = split_x ? pa.x : pa.y;
    const double kb = split_x ? pb.x : pb.y;
    if (ka != kb) return ka < kb;
    const double ja = split_x ? pa.y : pa.x;
    const double jb = split_x ? pb.y : pb.x;
    if (ja != jb) return ja < jb;
    return a < b;
  };
  std::nth_element(idx.begin() + static_cast<ptrdiff_t>(begin),
                   idx.begin() + static_cast<ptrdiff_t>(begin + left_n),
                   idx.begin() + static_cast<ptrdiff_t>(end), cmp);

  SplitRange(centroids, idx, begin, begin + left_n, shard_begin, left_shards,
             assignment);
  SplitRange(centroids, idx, begin + left_n, end,
             shard_begin + static_cast<uint32_t>(left_shards), right_shards,
             assignment);
}

}  // namespace

Partition PartitionByCentroid(const std::vector<Point>& centroids,
                              size_t shards) {
  Partition result;
  result.shards = std::max<size_t>(shards, 1);
  result.assignment.assign(centroids.size(), 0);
  if (result.shards == 1 || centroids.empty()) return result;

  std::vector<size_t> idx(centroids.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  SplitRange(centroids, idx, 0, idx.size(), /*shard_begin=*/0, result.shards,
             &result.assignment);
  return result;
}

Result<SplitImage> SplitCatalogImage(const CatalogImage& snapshot,
                                           size_t shards) {
  // Same combined-centroid partition as ShardedEngine::BuildShardSet: one
  // split covers both datasets, so a shard is one patch of space for
  // points and uncertains alike.
  std::vector<Point> centroids;
  centroids.reserve(snapshot.points.size() + snapshot.uncertains.size());
  for (const PointObject& p : snapshot.points) {
    centroids.push_back(p.location);
  }
  for (const UncertainObject& u : snapshot.uncertains) {
    centroids.push_back(u.region().Center());
  }
  const Partition partition = PartitionByCentroid(centroids, shards);

  SplitImage split;
  split.shards.resize(partition.shards);
  split.map.resize(partition.shards);
  for (CatalogImage& shard : split.shards) shard.epoch = snapshot.epoch;
  for (size_t i = 0; i < snapshot.points.size(); ++i) {
    const uint32_t s = partition.assignment[i];
    split.shards[s].points.push_back(snapshot.points[i]);
    split.map[s].point_bounds = split.map[s].point_bounds.Union(
        Rect::AtPoint(snapshot.points[i].location));
  }
  for (size_t i = 0; i < snapshot.uncertains.size(); ++i) {
    const uint32_t s = partition.assignment[snapshot.points.size() + i];
    const UncertainObject& object = snapshot.uncertains[i];
    split.map[s].uncertain_bounds =
        split.map[s].uncertain_bounds.Union(object.region());
    split.shards[s].uncertains.push_back(object);
  }
  return split;
}

}  // namespace ilq
