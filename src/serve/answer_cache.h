// Sharded LRU cache of query answers for the serving layer: repeated-query
// traffic (the same subscriber re-issuing its range query, hot spots under
// Zipfian skew) short-circuits to a stored AnswerSet instead of re-running
// the evaluators.
//
// Keying contract: a key identifies the answer by (issuer id, method, query
// spec, prune toggles). The engine's answers are deterministic functions of
// exactly that tuple *provided the issuer id uniquely identifies the
// issuer's pdf* — the registered-subscriber model of the serving layer.
// Issuers with id 0 (the anonymous default of MakeIssuer / workload
// issuers) must not be cached; AsyncServer enforces that rule.
//
// Epoch tagging (PR 6, mutable catalogs): each entry records the engine
// epoch it was answered at. Lookups carry the caller's current epoch, and a
// stale entry is invalidated lazily on its next touch — no publish-time
// sweep, so updates stay O(batch) regardless of cache size.
//
// Region entries (continuous tier, PR 10): exact-spec matching breaks down
// for *moving* issuers — the key still matches while the issuer's pdf has
// moved on. InsertRegion therefore stores, next to the answers, the byte
// fingerprint of the issuer pdf they were computed for and the
// SubscriptionBasis covering a whole valid region of placements.
// LookupRegion then grades a hit: identical fingerprint → the stored
// answers verbatim (*exact* hit); region still contained in the entry's
// valid region → the shared basis, for the caller to replay at the new
// placement (*containment* hit). The plain Lookup never serves a region
// entry (it cannot prove the pdf is unchanged), so one-shot and continuous
// traffic under the same issuer id cannot cross-contaminate.
//
// Sharding: keys hash across independent LRU shards, each with its own
// mutex, so concurrent workers rarely contend on the same lock. Counters
// (hits / misses / insertions / evictions / invalidations) are relaxed
// atomics.

#ifndef ILQ_SERVE_ANSWER_CACHE_H_
#define ILQ_SERVE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/batch.h"
#include "core/query.h"
#include "geometry/rect.h"
#include "object/uncertain_object.h"

namespace ilq {

// serve/subscription_manager.h; opaque to the cache (stored, never read).
struct SubscriptionBasis;

/// \brief Everything an answer depends on (given the engine's datasets).
struct CacheKey {
  uint64_t issuer_id = 0;
  QueryMethod method = QueryMethod::kIpq;
  double w = 0.0;
  double h = 0.0;
  double threshold = 0.0;
  // CiuqPruneConfig toggles change kCiuqPti answers at threshold
  // boundaries, so they are part of the key for every method (cheap) rather
  // than special-cased.
  bool strategy1 = true;
  bool strategy2 = true;
  bool strategy3 = true;

  friend bool operator==(const CacheKey& a, const CacheKey& b) = default;
};

/// Builds the key for one submission (bitwise doubles: specs that differ in
/// the last ulp are different queries, exactly like the evaluators see
/// them).
CacheKey MakeCacheKey(const UncertainObject& issuer, QueryMethod method,
                      const BatchSpec& spec);

/// \brief Sharded LRU: at most \p capacity entries total, split across
/// shards by floor division (a few slots may go unused when capacity is
/// not a multiple of the shard count — never the other way around).
class AnswerCache {
 public:
  /// \p capacity == 0 disables the cache (Lookup always misses, Insert is a
  /// no-op). \p shards is clamped to [1, capacity] so every shard holds at
  /// least one entry.
  explicit AnswerCache(size_t capacity, size_t shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// The stored answers, refreshing the entry's recency; nullopt on miss.
  /// Entries are epoch-tagged: a hit whose stored epoch differs from
  /// \p epoch is stale — it is erased (counted as an invalidation) and
  /// reported as a miss. Callers pass the engine epoch they are answering
  /// against; the default 0 matches Insert's default for engines that
  /// never update.
  std::optional<AnswerSet> Lookup(const CacheKey& key, uint64_t epoch = 0);

  /// Stores (or refreshes) the answers tagged with \p epoch, evicting the
  /// least recently used entry of the key's shard when that shard is full.
  void Insert(const CacheKey& key, AnswerSet answers, uint64_t epoch = 0);

  /// \brief A graded region-entry hit (see LookupRegion).
  struct RegionHit {
    /// True: \c answers hold the stored AnswerSet and the issuer
    /// fingerprint matched byte-for-byte — the issuer has not moved.
    /// False: the issuer moved but its region is still contained in
    /// \c valid_region — replay \c basis at the new placement.
    bool exact = false;
    AnswerSet answers;               ///< filled on exact hits
    Rect valid_region = Rect::Empty();
    std::shared_ptr<const SubscriptionBasis> basis;  ///< always filled
  };

  /// Region-containment lookup (continuous tier): nullopt on miss, an
  /// exact hit when \p fingerprint equals the stored one (empty
  /// fingerprints never match), a containment hit when \p region is
  /// contained in the entry's valid region. Stale-epoch entries are
  /// dropped exactly like Lookup's; a region that escaped the valid
  /// region is a plain miss (the entry stays — the caller's InsertRegion
  /// will refresh it).
  std::optional<RegionHit> LookupRegion(const CacheKey& key,
                                        const Rect& region,
                                        std::span<const uint8_t> fingerprint,
                                        uint64_t epoch = 0);

  /// Stores (or refreshes) a region entry: answers computed for the issuer
  /// placement identified by \p fingerprint, plus the basis whose
  /// \p valid_region they cover. Shares the LRU shards (and eviction) with
  /// plain entries.
  void InsertRegion(const CacheKey& key, AnswerSet answers,
                    std::vector<uint8_t> fingerprint, Rect valid_region,
                    std::shared_ptr<const SubscriptionBasis> basis,
                    uint64_t epoch = 0);

  /// \brief Monotonic counters (relaxed snapshot).
  struct Counters {
    uint64_t hits = 0;    ///< total = exact_hits + containment_hits
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  ///< stale-epoch entries dropped by Lookup
    uint64_t entries = 0;  ///< currently resident (sums shard sizes)
    /// Full-answer reuse: plain Lookup hits and fingerprint-verified
    /// LookupRegion hits.
    uint64_t exact_hits = 0;
    /// Basis reuse: LookupRegion hits answered by replaying the stored
    /// basis at a new placement inside its valid region.
    uint64_t containment_hits = 0;
  };
  Counters counters() const;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    CacheKey key;
    AnswerSet answers;
    uint64_t epoch = 0;
    // Region entries only (InsertRegion): the issuer-pdf fingerprint the
    // answers were computed for, and the basis covering valid_region. A
    // plain entry leaves basis null.
    std::vector<uint8_t> fingerprint;
    Rect valid_region = Rect::Empty();
    std::shared_ptr<const SubscriptionBasis> basis;
  };
  struct KeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map points into the list; list
    // iterators stay valid under splice, so refresh is O(1).
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const CacheKey& key);
  void InsertEntry(Entry entry);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> exact_hits_{0};
  std::atomic<uint64_t> containment_hits_{0};
};

}  // namespace ilq

#endif  // ILQ_SERVE_ANSWER_CACHE_H_
