// ShardedEngine — spatial sharding of one logical catalog across several
// QueryEngines (ROADMAP "scaling" item: sharding across engines).
//
// Build partitions the point and uncertain datasets into S spatial shards
// (k-d centroid partition, serve/partition.h) and builds one QueryEngine
// per shard. Run routes a query to the shards whose dataset bounds
// intersect its Minkowski-expanded query box (Lemma 1: nothing outside the
// box can qualify), fans the query out, and merges the per-shard answers
// id-sorted and deduped.
//
// Determinism guarantee: the merged AnswerSet is bit-identical to running
// the monolithic QueryEngine over the whole catalog and sorting its
// answers by id — for all eight QueryMethods and both probability kernels.
// The pieces that make this hold:
//   - every evaluator computes a candidate's probability as a pure function
//     of (issuer, object, spec, options); Monte-Carlo streams are seeded
//     per candidate from MixSeeds(mc_seed, object id), so splitting the
//     candidate stream across shards cannot shift any estimate;
//   - an object lives in exactly one shard, and shard bounds contain every
//     member's region, so routed shards cover exactly the candidates the
//     monolithic index would report (no duplicates, no gaps);
//   - C-IUQ/PTI pruning is object-dominated: the per-object prune test is
//     at least as strong as any subtree test that could have removed it,
//     so per-shard PTI trees admit the same survivor set as the monolithic
//     tree (tests/sharded_differential_test.cc pins all of this).
//
// Merged IndexStats are NOT comparable to the monolithic engine's — S
// smaller trees are traversed instead of one large one — but they remain
// deterministic for a fixed (S, dataset, query).
//
// Since PR 6 the sharded catalog is *mutable*. The shard table (engines,
// routing bounds, id→shard maps) lives in an immutable ShardSet published
// through an atomic shared_ptr. ApplyUpdates routes each op to its shard —
// a Move that crosses a shard boundary becomes erase-at-source plus
// insert-at-destination — applies per-shard batches to O(1) engine forks
// (QueryEngine::Fork), and publishes the new set with an epoch bump, so a
// reader that loaded the set either sees the whole batch or none of it.
// Per-shard routed-request counters feed load_stats(); when
// resplit_load_ratio is configured and the max/mean routed-load imbalance
// crosses it, the catalog is gathered and re-partitioned from the current
// object positions (Resplit), dissolving the hotspot the build-time
// partition could not foresee.
//
// Thread safety: Run and every accessor are const and safe to call
// concurrently with each other *and* with ApplyUpdates/Resplit (writers
// serialize internally); AsyncServer layers a request queue on exactly
// this property.

#ifndef ILQ_SERVE_SHARDED_ENGINE_H_
#define ILQ_SERVE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/batch.h"
#include "core/engine.h"
#include "geometry/rect.h"
#include "object/catalog.h"
#include "serve/partition.h"
#include "wire/shard_map.h"

namespace ilq {

// CanonicalizeAnswers and QueryMethodUsesPoints moved to core/batch.h (the
// continuous subsystem needs them below the serve layer); this header still
// provides them transitively for existing callers.

/// Minkowski-box routing over a ShardMap: the shards whose relevant bounds
/// (point or uncertain, per QueryMethodUsesPoints) intersect R ⊕ U0.
/// Shared by ShardedEngine (in-process fan-out) and Router (remote
/// fan-out), so the two tiers route identically by construction.
std::vector<size_t> RouteOverShardMap(const ShardMap& map,
                                      QueryMethod method,
                                      const UncertainObject& issuer,
                                      const RangeQuerySpec& spec);

/// \brief Construction parameters for a sharded catalog.
struct ShardedEngineConfig {
  /// Spatial shards to split the catalog into. 0 resolves to 1. Shards
  /// left empty by the partition (S larger than the catalog) are built as
  /// empty engines and never routed to.
  size_t shards = 4;

  /// Per-shard engine configuration. An empty catalog ladder is resolved
  /// to the engine default once, up front, so MakeIssuer and every shard
  /// agree on the ladder.
  EngineConfig engine;

  /// Load-driven re-split: after an update batch, when the busiest shard's
  /// routed-request count exceeds resplit_load_ratio × the mean (and at
  /// least resplit_min_requests requests have been routed since the last
  /// (re)build), the catalog is re-partitioned from current object
  /// positions. 0 disables automatic re-splitting (Resplit() still works).
  double resplit_load_ratio = 0.0;
  size_t resplit_min_requests = 512;
};

/// Per-shard load / occupancy counters (see ShardedEngine::load_stats).
struct ShardLoadStats {
  struct PerShard {
    uint64_t routed = 0;  ///< queries fanned to this shard since (re)build
    size_t points = 0;
    size_t uncertains = 0;
  };
  std::vector<PerShard> shards;
  /// max/mean of the routed counters (0 when nothing was routed yet) —
  /// the quantity compared against resplit_load_ratio.
  double imbalance = 0.0;
};

/// \brief One logical catalog served by S spatially partitioned engines.
class ShardedEngine {
 public:
  /// Partitions the datasets, builds one QueryEngine per shard and records
  /// per-shard dataset bounds for routing. Either dataset may be empty.
  /// Update support requires ids unique within each object kind (as with
  /// QueryEngine::ApplyUpdates).
  static Result<ShardedEngine> Build(std::vector<PointObject> points,
                                     std::vector<UncertainObject> uncertains,
                                     ShardedEngineConfig config = {});

  /// Wraps an existing engine as a single-shard ShardedEngine — the
  /// adoption path for engines that cannot be rebuilt from object vectors,
  /// above all disk-resident ones (QueryEngine::OpenPaged): a shard server
  /// bootstrapping from a bundle mounts the index files once and serves
  /// them directly. Routing bounds are taken from the engine's index
  /// bounds, the id→shard maps from its catalog, and the published epoch
  /// from engine.epoch(). config.shards is forced to 1. Updates against a
  /// paged engine fail with kFailedPrecondition (the engine is read-only);
  /// Resplit would rebuild in memory and is likewise rejected for paged
  /// engines.
  static Result<ShardedEngine> FromEngine(QueryEngine engine,
                                          ShardedEngineConfig config = {});

  /// Evaluates \p method for one issuer: routes to the intersecting
  /// shards, fans out (serially — concurrency across *queries* is the
  /// AsyncServer's job), merges answers id-sorted/deduped and folds the
  /// per-shard IndexStats into \p stats when given. Counts one routed
  /// request per fanned-to shard for load_stats().
  AnswerSet Run(QueryMethod method, const UncertainObject& issuer,
                const BatchSpec& spec, IndexStats* stats = nullptr) const;

  /// Shard indices Run would fan out to (introspection for tests and the
  /// routing-efficiency numbers in the serve bench). Does not count load.
  std::vector<size_t> Route(QueryMethod method, const UncertainObject& issuer,
                            const RangeQuerySpec& spec) const;

  // ---- Updates (epoch-versioned, PR 6) -----------------------------------

  /// Routes each op to its shard (an object's shard can change on Move),
  /// applies the per-shard batches to private engine forks, and publishes
  /// the new shard set atomically with the next epoch. All-or-nothing: on
  /// error nothing is published. May trigger an automatic re-split (see
  /// ShardedEngineConfig::resplit_load_ratio). Writers serialize; readers
  /// are never blocked.
  Status ApplyUpdates(const UpdateBatch& batch);

  /// Gathers the whole catalog from the current shards and re-partitions
  /// it from current object positions (fresh k-d split, fresh engines,
  /// load counters reset). Publishes atomically with the next epoch.
  Status Resplit();

  /// Epoch of the published shard set: bumped by every successful
  /// ApplyUpdates and every re-split (0 = as built). AnswerCache entries
  /// are tagged with this.
  uint64_t epoch() const;

  /// Number of re-splits performed (manual + load-triggered).
  uint64_t resplit_count() const;

  /// Per-shard routed/occupancy counters and the max/mean imbalance.
  ShardLoadStats load_stats() const;

  /// Wraps an issuer pdf as the query issuer O0 with the shared catalog
  /// ladder (mirrors QueryEngine::MakeIssuer).
  Result<UncertainObject> MakeIssuer(
      std::unique_ptr<UncertaintyPdf> pdf) const;

  /// The current routing table (point/uncertain bounds per shard) as a
  /// ShardMap — what a remote Router loads to fan out exactly like Run
  /// does in-process (wire/shard_map.h has the file format). Snapshot of
  /// the published set; conservative under churn like the bounds it
  /// copies.
  ShardMap ExportShardMap() const;

  /// \brief One shard pinned out of the published set (see Pin).
  struct PinnedShard {
    std::shared_ptr<const QueryEngine> engine;
    Rect point_bounds = Rect::Empty();
    Rect uncertain_bounds = Rect::Empty();
  };
  /// \brief A pinned shard set: engines plus the epoch they were read at.
  struct PinnedSet {
    uint64_t epoch = 0;
    std::vector<PinnedShard> shards;
  };

  /// Pins the published shard set: the returned engines stay alive — and
  /// keep answering at their published state, since ApplyUpdates replaces
  /// engines with forks instead of mutating them — across concurrent
  /// updates and re-splits, unlike shard(), whose reference a re-split can
  /// invalidate. The epoch is read *before* the set, so under a concurrent
  /// publish the recorded epoch can only be older than the pinned shards:
  /// consumers comparing it against epoch() later fail conservatively
  /// (one spurious rebuild), never by serving stale state as current. The
  /// continuous tier (serve/subscription_manager.h) prefetches candidate
  /// bases from exactly this.
  PinnedSet Pin() const;

  size_t shard_count() const;
  /// The shard's engine. Valid until the next Resplit publishes a new set
  /// (per-shard ApplyUpdates keeps engines alive across update batches).
  const QueryEngine& shard(size_t i) const;
  /// Union box of the shard's point locations; empty when it holds no
  /// points. Conservative under churn: grown on insert/move-in, never
  /// shrunk until a re-split recomputes it tight.
  Rect shard_point_bounds(size_t i) const;
  /// Union box of the shard's uncertainty regions; same growth contract.
  Rect shard_uncertain_bounds(size_t i) const;
  const ShardedEngineConfig& config() const { return config_; }

 private:
  struct Shard {
    std::shared_ptr<QueryEngine> engine;
    Rect point_bounds = Rect::Empty();
    Rect uncertain_bounds = Rect::Empty();
    // Union of member centroids; routes freshly inserted objects to the
    // spatially nearest shard. Grown on insert, reset by re-split.
    Rect seed_region = Rect::Empty();
    // Shared across ShardSet copies so load history survives update
    // batches; replaced (reset) by re-splits.
    std::shared_ptr<std::atomic<uint64_t>> routed;
  };
  struct ShardSet {
    std::vector<Shard> shards;
    std::unordered_map<ObjectId, uint32_t> point_shard;
    std::unordered_map<ObjectId, uint32_t> uncertain_shard;
  };
  using ShardSetPtr = std::shared_ptr<const ShardSet>;
  struct Control {
    std::atomic<ShardSetPtr> set;
    std::mutex writer_mu;
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> resplits{0};
  };

  ShardedEngine(ShardedEngineConfig config, ShardSetPtr set);

  static Result<ShardSet> BuildShardSet(
      std::vector<PointObject> points,
      std::vector<UncertainObject> uncertains,
      const ShardedEngineConfig& config);

  ShardSetPtr set() const;
  // Shard a freshly placed object with centroid \p centroid routes to.
  static uint32_t RouteInsert(const ShardSet& set, const Point& centroid);
  static std::vector<size_t> RouteInSet(const ShardSet& set,
                                        QueryMethod method,
                                        const UncertainObject& issuer,
                                        const RangeQuerySpec& spec);
  // Re-split with writer_mu already held.
  Status ResplitLocked();

  ShardedEngineConfig config_;
  // Heap-held so the engine stays movable (atomics are not).
  std::unique_ptr<Control> control_;
};

}  // namespace ilq

#endif  // ILQ_SERVE_SHARDED_ENGINE_H_
