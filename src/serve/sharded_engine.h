// ShardedEngine — spatial sharding of one logical catalog across several
// QueryEngines (ROADMAP "scaling" item: sharding across engines).
//
// Build partitions the point and uncertain datasets into S spatial shards
// (k-d centroid partition, serve/partition.h) and builds one QueryEngine
// per shard. Run routes a query to the shards whose dataset bounds
// intersect its Minkowski-expanded query box (Lemma 1: nothing outside the
// box can qualify), fans the query out, and merges the per-shard answers
// id-sorted and deduped.
//
// Determinism guarantee: the merged AnswerSet is bit-identical to running
// the monolithic QueryEngine over the whole catalog and sorting its
// answers by id — for all eight QueryMethods and both probability kernels.
// The pieces that make this hold:
//   - every evaluator computes a candidate's probability as a pure function
//     of (issuer, object, spec, options); Monte-Carlo streams are seeded
//     per candidate from MixSeeds(mc_seed, object id), so splitting the
//     candidate stream across shards cannot shift any estimate;
//   - an object lives in exactly one shard, and shard bounds contain every
//     member's region, so routed shards cover exactly the candidates the
//     monolithic index would report (no duplicates, no gaps);
//   - C-IUQ/PTI pruning is object-dominated: the per-object prune test is
//     at least as strong as any subtree test that could have removed it,
//     so per-shard PTI trees admit the same survivor set as the monolithic
//     tree (tests/sharded_differential_test.cc pins all of this).
//
// Merged IndexStats are NOT comparable to the monolithic engine's — S
// smaller trees are traversed instead of one large one — but they remain
// deterministic for a fixed (S, dataset, query).
//
// Thread safety: after Build, Run and every accessor are const and safe to
// call concurrently (each shard engine carries the QueryEngine guarantee);
// AsyncServer layers a request queue on exactly this property.

#ifndef ILQ_SERVE_SHARDED_ENGINE_H_
#define ILQ_SERVE_SHARDED_ENGINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/batch.h"
#include "core/engine.h"
#include "geometry/rect.h"
#include "serve/partition.h"

namespace ilq {

/// \brief Construction parameters for a sharded catalog.
struct ShardedEngineConfig {
  /// Spatial shards to split the catalog into. 0 resolves to 1. Shards
  /// left empty by the partition (S larger than the catalog) are built as
  /// empty engines and never routed to.
  size_t shards = 4;

  /// Per-shard engine configuration. An empty catalog ladder is resolved
  /// to the engine default once, up front, so MakeIssuer and every shard
  /// agree on the ladder.
  EngineConfig engine;
};

/// \brief One logical catalog served by S spatially partitioned engines.
class ShardedEngine {
 public:
  /// Partitions the datasets, builds one QueryEngine per shard and records
  /// per-shard dataset bounds for routing. Either dataset may be empty.
  static Result<ShardedEngine> Build(std::vector<PointObject> points,
                                     std::vector<UncertainObject> uncertains,
                                     ShardedEngineConfig config = {});

  /// Evaluates \p method for one issuer: routes to the intersecting
  /// shards, fans out (serially — concurrency across *queries* is the
  /// AsyncServer's job), merges answers id-sorted/deduped and folds the
  /// per-shard IndexStats into \p stats when given.
  AnswerSet Run(QueryMethod method, const UncertainObject& issuer,
                const BatchSpec& spec, IndexStats* stats = nullptr) const;

  /// Shard indices Run would fan out to (introspection for tests and the
  /// routing-efficiency numbers in the serve bench).
  std::vector<size_t> Route(QueryMethod method, const UncertainObject& issuer,
                            const RangeQuerySpec& spec) const;

  /// Wraps an issuer pdf as the query issuer O0 with the shared catalog
  /// ladder (mirrors QueryEngine::MakeIssuer).
  Result<UncertainObject> MakeIssuer(
      std::unique_ptr<UncertaintyPdf> pdf) const;

  size_t shard_count() const { return shards_.size(); }
  const QueryEngine& shard(size_t i) const { return shards_[i].engine; }
  /// Union of the shard's point locations; empty when it holds no points.
  const Rect& shard_point_bounds(size_t i) const {
    return shards_[i].point_bounds;
  }
  /// Union of the shard's uncertainty regions; empty when it holds none.
  const Rect& shard_uncertain_bounds(size_t i) const {
    return shards_[i].uncertain_bounds;
  }
  const ShardedEngineConfig& config() const { return config_; }

 private:
  struct Shard {
    QueryEngine engine;
    Rect point_bounds = Rect::Empty();
    Rect uncertain_bounds = Rect::Empty();
  };

  ShardedEngine(std::vector<Shard> shards, ShardedEngineConfig config)
      : shards_(std::move(shards)), config_(std::move(config)) {}

  std::vector<Shard> shards_;
  ShardedEngineConfig config_;
};

/// True when \p method queries the point dataset (IPQ family); the IUQ /
/// C-IUQ family queries the uncertain dataset. Routing picks the matching
/// per-shard bounds.
bool QueryMethodUsesPoints(QueryMethod method);

}  // namespace ilq

#endif  // ILQ_SERVE_SHARDED_ENGINE_H_
