#include "serve/answer_cache.h"

#include <algorithm>
#include <bit>

#include "common/rng.h"

namespace ilq {

CacheKey MakeCacheKey(const UncertainObject& issuer, QueryMethod method,
                      const BatchSpec& spec) {
  CacheKey key;
  key.issuer_id = issuer.id();
  key.method = method;
  key.w = spec.query.w;
  key.h = spec.query.h;
  key.threshold = spec.query.threshold;
  key.strategy1 = spec.prune.strategy1;
  key.strategy2 = spec.prune.strategy2;
  key.strategy3 = spec.prune.strategy3;
  return key;
}

size_t AnswerCache::KeyHash::operator()(const CacheKey& key) const {
  // Chain the SplitMix64 finalizer over every field; doubles hash by bit
  // pattern (matching operator==, which compares them exactly).
  uint64_t h = MixSeeds(0x1175A17E5E84C0DEULL, key.issuer_id);
  h = MixSeeds(h, static_cast<uint64_t>(key.method));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.w));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.h));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.threshold));
  h = MixSeeds(h, (key.strategy1 ? 1u : 0u) | (key.strategy2 ? 2u : 0u) |
                      (key.strategy3 ? 4u : 0u));
  return static_cast<size_t>(h);
}

AnswerCache::AnswerCache(size_t capacity, size_t shards)
    : capacity_(capacity) {
  if (capacity_ == 0) return;
  const size_t shard_count = std::clamp<size_t>(shards, 1, capacity_);
  // Floor division: resident entries never exceed the requested capacity
  // (shard_count <= capacity keeps every shard at >= 1 entry).
  per_shard_capacity_ = capacity_ / shard_count;
  shards_ = std::vector<Shard>(shard_count);
}

AnswerCache::Shard& AnswerCache::ShardFor(const CacheKey& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<AnswerSet> AnswerCache::Lookup(const CacheKey& key,
                                             uint64_t epoch) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Stale: answered at a superseded epoch. Drop lazily and miss.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->basis != nullptr) {
    // Region entry: the stored answers belong to one issuer *placement*,
    // which a plain lookup cannot verify (no fingerprint) — serving them
    // on a key match alone would hand a moved issuer another position's
    // answers. Only LookupRegion may serve these.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  exact_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->answers;
}

std::optional<AnswerCache::RegionHit> AnswerCache::LookupRegion(
    const CacheKey& key, const Rect& region,
    std::span<const uint8_t> fingerprint, uint64_t epoch) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.epoch != epoch) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (entry.basis == nullptr) {
    // Plain entry under a subscription key: no valid region to grade
    // against. Miss (InsertRegion will upgrade it).
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const bool exact =
      !fingerprint.empty() && fingerprint.size() == entry.fingerprint.size() &&
      std::equal(fingerprint.begin(), fingerprint.end(),
                 entry.fingerprint.begin());
  if (!exact && !entry.valid_region.ContainsRect(region)) {
    // Escaped the valid region: a genuine miss, but the entry itself is
    // not stale — the caller re-evaluates and refreshes it.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  RegionHit hit;
  hit.exact = exact;
  if (exact) hit.answers = entry.answers;
  hit.valid_region = entry.valid_region;
  hit.basis = entry.basis;
  hits_.fetch_add(1, std::memory_order_relaxed);
  (exact ? exact_hits_ : containment_hits_)
      .fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void AnswerCache::Insert(const CacheKey& key, AnswerSet answers,
                         uint64_t epoch) {
  Entry entry;
  entry.key = key;
  entry.answers = std::move(answers);
  entry.epoch = epoch;
  InsertEntry(std::move(entry));
}

void AnswerCache::InsertRegion(const CacheKey& key, AnswerSet answers,
                               std::vector<uint8_t> fingerprint,
                               Rect valid_region,
                               std::shared_ptr<const SubscriptionBasis> basis,
                               uint64_t epoch) {
  Entry entry;
  entry.key = key;
  entry.answers = std::move(answers);
  entry.epoch = epoch;
  entry.fingerprint = std::move(fingerprint);
  entry.valid_region = valid_region;
  entry.basis = std::move(basis);
  InsertEntry(std::move(entry));
}

void AnswerCache::InsertEntry(Entry entry) {
  if (!enabled()) return;
  Shard& shard = ShardFor(entry.key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(entry.key);
  if (it != shard.index.end()) {
    // Refresh: racing workers may compute the same answer; last one wins.
    // A plain refresh over a region entry demotes it (and vice versa) —
    // whichever writer was last knows the current placement.
    *it->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

AnswerCache::Counters AnswerCache::counters() const {
  Counters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.insertions = insertions_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.invalidations =
      invalidations_.load(std::memory_order_relaxed);
  counters.exact_hits = exact_hits_.load(std::memory_order_relaxed);
  counters.containment_hits =
      containment_hits_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    // Size probe without the lock would race; take it briefly.
    std::lock_guard<std::mutex> lock(shard.mu);
    counters.entries += shard.lru.size();
  }
  return counters;
}

}  // namespace ilq
