#include "serve/answer_cache.h"

#include <algorithm>
#include <bit>

#include "common/rng.h"

namespace ilq {

CacheKey MakeCacheKey(const UncertainObject& issuer, QueryMethod method,
                      const BatchSpec& spec) {
  CacheKey key;
  key.issuer_id = issuer.id();
  key.method = method;
  key.w = spec.query.w;
  key.h = spec.query.h;
  key.threshold = spec.query.threshold;
  key.strategy1 = spec.prune.strategy1;
  key.strategy2 = spec.prune.strategy2;
  key.strategy3 = spec.prune.strategy3;
  return key;
}

size_t AnswerCache::KeyHash::operator()(const CacheKey& key) const {
  // Chain the SplitMix64 finalizer over every field; doubles hash by bit
  // pattern (matching operator==, which compares them exactly).
  uint64_t h = MixSeeds(0x1175A17E5E84C0DEULL, key.issuer_id);
  h = MixSeeds(h, static_cast<uint64_t>(key.method));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.w));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.h));
  h = MixSeeds(h, std::bit_cast<uint64_t>(key.threshold));
  h = MixSeeds(h, (key.strategy1 ? 1u : 0u) | (key.strategy2 ? 2u : 0u) |
                      (key.strategy3 ? 4u : 0u));
  return static_cast<size_t>(h);
}

AnswerCache::AnswerCache(size_t capacity, size_t shards)
    : capacity_(capacity) {
  if (capacity_ == 0) return;
  const size_t shard_count = std::clamp<size_t>(shards, 1, capacity_);
  // Floor division: resident entries never exceed the requested capacity
  // (shard_count <= capacity keeps every shard at >= 1 entry).
  per_shard_capacity_ = capacity_ / shard_count;
  shards_ = std::vector<Shard>(shard_count);
}

AnswerCache::Shard& AnswerCache::ShardFor(const CacheKey& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<AnswerSet> AnswerCache::Lookup(const CacheKey& key,
                                             uint64_t epoch) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Stale: answered at a superseded epoch. Drop lazily and miss.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->answers;
}

void AnswerCache::Insert(const CacheKey& key, AnswerSet answers,
                         uint64_t epoch) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: racing workers may compute the same answer; last one wins.
    it->second->answers = std::move(answers);
    it->second->epoch = epoch;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, std::move(answers), epoch});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

AnswerCache::Counters AnswerCache::counters() const {
  Counters counters;
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.insertions = insertions_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.invalidations =
      invalidations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    // Size probe without the lock would race; take it briefly.
    std::lock_guard<std::mutex> lock(shard.mu);
    counters.entries += shard.lru.size();
  }
  return counters;
}

}  // namespace ilq
