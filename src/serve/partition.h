// Spatial partitioning for the sharded serving layer (serve/): assigns
// objects to S shards by recursively median-splitting their centroids along
// the wider axis — a k-d style partition that keeps each shard spatially
// coherent (small bounding box) and size-balanced, so the Minkowski-expanded
// query box of a typical query intersects only a few shards.
//
// S is not restricted to powers of two: a group carrying k target shards
// splits into floor(k/2) / ceil(k/2) halves with proportional item counts.
// The split comparator totally orders ties (coordinate, cross coordinate,
// input index), so the assignment is deterministic across platforms and
// repeated builds — a requirement for the sharded engine's reproducibility
// guarantees.

#ifndef ILQ_SERVE_PARTITION_H_
#define ILQ_SERVE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "object/snapshot.h"
#include "wire/shard_map.h"

namespace ilq {

/// \brief Result of a centroid partition: one shard index per input.
struct Partition {
  std::vector<uint32_t> assignment;  ///< assignment[i] in [0, shards)
  size_t shards = 0;                 ///< resolved shard count (>= 1)
};

/// Splits \p centroids into \p shards spatially coherent, size-balanced
/// groups. `shards == 0` resolves to 1; `shards > centroids.size()` leaves
/// the surplus shards empty (their indices are simply never assigned).
/// Deterministic for identical inputs.
Partition PartitionByCentroid(const std::vector<Point>& centroids,
                              size_t shards);

/// \brief A catalog split for multi-process serving: one sub-snapshot per
/// shard plus the ShardMap a Router needs to fan out to them.
struct SplitImage {
  std::vector<CatalogImage> shards;  ///< every object in exactly one
  ShardMap map;                         ///< routing bounds, shard order
};

/// Splits \p snapshot into \p shards spatially coherent sub-snapshots with
/// the same combined-centroid k-d partition ShardedEngine::Build uses
/// in-process, and computes each shard's routing bounds. Every shard
/// snapshot inherits the source epoch. Deterministic; surplus shards stay
/// empty. The disjoint-cover property (each object in exactly one shard,
/// bounds containing every member) is what makes a remote router's merged
/// answers bit-identical to the monolithic engine — see
/// serve/sharded_engine.h.
Result<SplitImage> SplitCatalogImage(const CatalogImage& snapshot,
                                           size_t shards);

}  // namespace ilq

#endif  // ILQ_SERVE_PARTITION_H_
