#include "serve/sharded_engine.h"

#include <algorithm>

#include "core/expansion.h"
#include "object/ucatalog.h"

namespace ilq {

bool QueryMethodUsesPoints(QueryMethod method) {
  switch (method) {
    case QueryMethod::kIpq:
    case QueryMethod::kIpqBasic:
    case QueryMethod::kCipqPExpanded:
    case QueryMethod::kCipqMinkowski:
      return true;
    case QueryMethod::kIuq:
    case QueryMethod::kIuqBasic:
    case QueryMethod::kCiuqRTree:
    case QueryMethod::kCiuqPti:
      return false;
  }
  return false;
}

Result<ShardedEngine> ShardedEngine::Build(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    ShardedEngineConfig config) {
  if (config.shards == 0) config.shards = 1;
  // Resolve the ladder once so MakeIssuer and every shard engine agree
  // (QueryEngine::Build would otherwise default it per shard).
  if (config.engine.catalog_values.empty()) {
    config.engine.catalog_values = UCatalog::EvenlySpacedValues(11);
  }

  // One partition over the combined centroids keeps the split consistent
  // for both datasets: a shard covers one patch of space for points and
  // uncertains alike.
  std::vector<Point> centroids;
  centroids.reserve(points.size() + uncertains.size());
  for (const PointObject& p : points) centroids.push_back(p.location);
  for (const UncertainObject& u : uncertains) {
    centroids.push_back(u.region().Center());
  }
  const Partition partition =
      PartitionByCentroid(centroids, config.shards);

  std::vector<std::vector<PointObject>> shard_points(partition.shards);
  std::vector<std::vector<UncertainObject>> shard_uncertains(
      partition.shards);
  std::vector<Rect> point_bounds(partition.shards, Rect::Empty());
  std::vector<Rect> uncertain_bounds(partition.shards, Rect::Empty());
  for (size_t i = 0; i < points.size(); ++i) {
    const uint32_t s = partition.assignment[i];
    point_bounds[s] =
        point_bounds[s].Union(Rect::AtPoint(points[i].location));
    shard_points[s].push_back(points[i]);
  }
  for (size_t i = 0; i < uncertains.size(); ++i) {
    const uint32_t s = partition.assignment[points.size() + i];
    uncertain_bounds[s] = uncertain_bounds[s].Union(uncertains[i].region());
    shard_uncertains[s].push_back(std::move(uncertains[i]));
  }

  std::vector<Shard> shards;
  shards.reserve(partition.shards);
  for (size_t s = 0; s < partition.shards; ++s) {
    Result<QueryEngine> engine =
        QueryEngine::Build(std::move(shard_points[s]),
                           std::move(shard_uncertains[s]), config.engine);
    if (!engine.ok()) return engine.status();
    shards.push_back(Shard{std::move(engine).ValueOrDie(), point_bounds[s],
                           uncertain_bounds[s]});
  }
  return ShardedEngine(std::move(shards), std::move(config));
}

std::vector<size_t> ShardedEngine::Route(QueryMethod method,
                                         const UncertainObject& issuer,
                                         const RangeQuerySpec& spec) const {
  // Lemma 1: only objects touching R ⊕ U0 can qualify, whichever method
  // refines the filter afterwards — so bounds ∩ expanded is a complete
  // (conservative) routing test.
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  const bool use_points = QueryMethodUsesPoints(method);
  std::vector<size_t> routed;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Rect& bounds =
        use_points ? shards_[s].point_bounds : shards_[s].uncertain_bounds;
    if (bounds.Intersects(expanded)) routed.push_back(s);
  }
  return routed;
}

AnswerSet ShardedEngine::Run(QueryMethod method,
                             const UncertainObject& issuer,
                             const BatchSpec& spec, IndexStats* stats) const {
  AnswerSet merged;
  for (const size_t s : Route(method, issuer, spec.query)) {
    IndexStats shard_stats;
    AnswerSet shard_answers =
        RunQueryMethod(shards_[s].engine, method, issuer, spec, &shard_stats);
    if (stats != nullptr) stats->Merge(shard_stats);
    merged.insert(merged.end(),
                  std::make_move_iterator(shard_answers.begin()),
                  std::make_move_iterator(shard_answers.end()));
  }
  // Canonical order: by id, probability bits breaking (never expected)
  // duplicate ids totally, then exact-duplicate removal. With unique ids
  // and disjoint shards the sort is the only observable effect.
  std::sort(merged.begin(), merged.end(),
            [](const ProbabilisticAnswer& a, const ProbabilisticAnswer& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.probability < b.probability;
            });
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<UncertainObject> ShardedEngine::MakeIssuer(
    std::unique_ptr<UncertaintyPdf> pdf) const {
  if (pdf == nullptr) {
    return Status::InvalidArgument("issuer pdf must not be null");
  }
  UncertainObject issuer(/*id=*/0, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(config_.engine.catalog_values));
  return issuer;
}

}  // namespace ilq
