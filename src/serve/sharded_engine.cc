#include "serve/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/expansion.h"
#include "object/ucatalog.h"

namespace ilq {

std::vector<size_t> RouteOverShardMap(const ShardMap& map,
                                      QueryMethod method,
                                      const UncertainObject& issuer,
                                      const RangeQuerySpec& spec) {
  // Lemma 1: only objects touching R ⊕ U0 can qualify, whichever method
  // refines the filter afterwards — so bounds ∩ expanded is a complete
  // (conservative) routing test.
  const Rect expanded =
      MinkowskiExpandedQuery(issuer.region(), spec.w, spec.h);
  const bool use_points = QueryMethodUsesPoints(method);
  std::vector<size_t> routed;
  for (size_t s = 0; s < map.size(); ++s) {
    const Rect& bounds =
        use_points ? map[s].point_bounds : map[s].uncertain_bounds;
    if (bounds.Intersects(expanded)) routed.push_back(s);
  }
  return routed;
}

ShardedEngine::ShardedEngine(ShardedEngineConfig config, ShardSetPtr set)
    : config_(std::move(config)), control_(std::make_unique<Control>()) {
  control_->set.store(std::move(set), std::memory_order_release);
}

ShardedEngine::ShardSetPtr ShardedEngine::set() const {
  return control_->set.load(std::memory_order_acquire);
}

Result<ShardedEngine::ShardSet> ShardedEngine::BuildShardSet(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    const ShardedEngineConfig& config) {
  // One partition over the combined centroids keeps the split consistent
  // for both datasets: a shard covers one patch of space for points and
  // uncertains alike.
  std::vector<Point> centroids;
  centroids.reserve(points.size() + uncertains.size());
  for (const PointObject& p : points) centroids.push_back(p.location);
  for (const UncertainObject& u : uncertains) {
    centroids.push_back(u.region().Center());
  }
  const Partition partition = PartitionByCentroid(centroids, config.shards);

  std::vector<std::vector<PointObject>> shard_points(partition.shards);
  std::vector<std::vector<UncertainObject>> shard_uncertains(
      partition.shards);
  std::vector<Rect> point_bounds(partition.shards, Rect::Empty());
  std::vector<Rect> uncertain_bounds(partition.shards, Rect::Empty());
  std::vector<Rect> seed_region(partition.shards, Rect::Empty());

  ShardSet set;
  for (size_t i = 0; i < points.size(); ++i) {
    const uint32_t s = partition.assignment[i];
    point_bounds[s] =
        point_bounds[s].Union(Rect::AtPoint(points[i].location));
    seed_region[s] = seed_region[s].Union(Rect::AtPoint(points[i].location));
    set.point_shard[points[i].id] = s;
    shard_points[s].push_back(points[i]);
  }
  for (size_t i = 0; i < uncertains.size(); ++i) {
    const uint32_t s = partition.assignment[points.size() + i];
    uncertain_bounds[s] = uncertain_bounds[s].Union(uncertains[i].region());
    seed_region[s] =
        seed_region[s].Union(Rect::AtPoint(uncertains[i].region().Center()));
    set.uncertain_shard[uncertains[i].id()] = s;
    shard_uncertains[s].push_back(std::move(uncertains[i]));
  }

  set.shards.reserve(partition.shards);
  for (size_t s = 0; s < partition.shards; ++s) {
    Result<QueryEngine> engine =
        QueryEngine::Build(std::move(shard_points[s]),
                           std::move(shard_uncertains[s]), config.engine);
    if (!engine.ok()) return engine.status();
    Shard shard;
    shard.engine =
        std::make_shared<QueryEngine>(std::move(engine).ValueOrDie());
    shard.point_bounds = point_bounds[s];
    shard.uncertain_bounds = uncertain_bounds[s];
    shard.seed_region = seed_region[s];
    shard.routed = std::make_shared<std::atomic<uint64_t>>(0);
    set.shards.push_back(std::move(shard));
  }
  return set;
}

Result<ShardedEngine> ShardedEngine::Build(
    std::vector<PointObject> points, std::vector<UncertainObject> uncertains,
    ShardedEngineConfig config) {
  if (config.shards == 0) config.shards = 1;
  // Resolve the ladder once so MakeIssuer and every shard engine agree
  // (QueryEngine::Build would otherwise default it per shard).
  if (config.engine.catalog_values.empty()) {
    config.engine.catalog_values = UCatalog::EvenlySpacedValues(11);
  }
  Result<ShardSet> set =
      BuildShardSet(std::move(points), std::move(uncertains), config);
  if (!set.ok()) return set.status();
  return ShardedEngine(
      std::move(config),
      std::make_shared<const ShardSet>(std::move(set).ValueOrDie()));
}

Result<ShardedEngine> ShardedEngine::FromEngine(QueryEngine engine,
                                                ShardedEngineConfig config) {
  config.shards = 1;
  // The adopted engine's config wins: MakeIssuer must build issuer
  // catalogs on the ladder the engine's objects were catalogued with, and
  // the storage/page settings describe what the engine actually runs on.
  config.engine = engine.config();

  const QueryEngine::SnapshotPtr snap = engine.snapshot();
  ShardSet set;
  Shard shard;
  shard.point_bounds = snap->point_index.bounds();
  shard.uncertain_bounds = snap->uncertain_index.bounds();
  shard.seed_region = shard.point_bounds.Union(shard.uncertain_bounds);
  shard.routed = std::make_shared<std::atomic<uint64_t>>(0);
  set.point_shard.reserve(snap->catalog->points.size());
  for (const PointObject& p : snap->catalog->points) {
    set.point_shard[p.id] = 0;
  }
  set.uncertain_shard.reserve(snap->catalog->uncertains.size());
  for (const UncertainObject& u : snap->catalog->uncertains) {
    set.uncertain_shard[u.id()] = 0;
  }
  const uint64_t epoch = snap->epoch();
  shard.engine = std::make_shared<QueryEngine>(std::move(engine));
  set.shards.push_back(std::move(shard));

  ShardedEngine sharded(std::move(config),
                        std::make_shared<const ShardSet>(std::move(set)));
  // Carry the adopted epoch (e.g. the one the catalog image was saved at)
  // into the serving tier's version handshake.
  sharded.control_->epoch.store(epoch, std::memory_order_release);
  return sharded;
}

uint32_t ShardedEngine::RouteInsert(const ShardSet& set,
                                    const Point& centroid) {
  uint32_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (uint32_t s = 0; s < set.shards.size(); ++s) {
    const Rect& seed = set.shards[s].seed_region;
    if (seed.IsEmpty()) continue;
    const double d =
        seed.Contains(centroid) ? 0.0 : seed.MinDistanceTo(centroid);
    if (d < best_distance) {
      best_distance = d;
      best = s;
    }
  }
  // All seeds empty (catalog built empty): everything lands on shard 0
  // until a re-split spreads it out.
  return best;
}

std::vector<size_t> ShardedEngine::RouteInSet(const ShardSet& set,
                                              QueryMethod method,
                                              const UncertainObject& issuer,
                                              const RangeQuerySpec& spec) {
  ShardMap map;
  map.reserve(set.shards.size());
  for (const Shard& shard : set.shards) {
    map.push_back({shard.point_bounds, shard.uncertain_bounds});
  }
  return RouteOverShardMap(map, method, issuer, spec);
}

std::vector<size_t> ShardedEngine::Route(QueryMethod method,
                                         const UncertainObject& issuer,
                                         const RangeQuerySpec& spec) const {
  const ShardSetPtr current = set();
  return RouteInSet(*current, method, issuer, spec);
}

AnswerSet ShardedEngine::Run(QueryMethod method,
                             const UncertainObject& issuer,
                             const BatchSpec& spec, IndexStats* stats) const {
  // One acquire load: the whole query sees one shard-set epoch.
  const ShardSetPtr current = set();
  AnswerSet merged;
  for (const size_t s : RouteInSet(*current, method, issuer, spec.query)) {
    current->shards[s].routed->fetch_add(1, std::memory_order_relaxed);
    IndexStats shard_stats;
    AnswerSet shard_answers = RunQueryMethod(*current->shards[s].engine,
                                             method, issuer, spec,
                                             &shard_stats);
    if (stats != nullptr) stats->Merge(shard_stats);
    merged.insert(merged.end(),
                  std::make_move_iterator(shard_answers.begin()),
                  std::make_move_iterator(shard_answers.end()));
  }
  // Canonical order (see CanonicalizeAnswers). With unique ids and
  // disjoint shards the sort is the only observable effect.
  CanonicalizeAnswers(&merged);
  return merged;
}

ShardMap ShardedEngine::ExportShardMap() const {
  const ShardSetPtr current = set();
  ShardMap map;
  map.reserve(current->shards.size());
  for (const Shard& shard : current->shards) {
    map.push_back({shard.point_bounds, shard.uncertain_bounds});
  }
  return map;
}

Status ShardedEngine::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(control_->writer_mu);
  const ShardSetPtr prev = control_->set.load(std::memory_order_acquire);
  auto next = std::make_shared<ShardSet>(*prev);
  const size_t shard_count = next->shards.size();

  // Pass 1 — route and validate against the id→shard maps, building one
  // sub-batch per shard. A Move whose destination routes to a different
  // shard becomes erase-at-source + insert-at-destination. All map/bounds
  // mutations happen on the private copy.
  std::vector<UpdateBatch> shard_batches(shard_count);
  for (size_t i = 0; i < batch.size(); ++i) {
    const UpdateOp& op = batch[i];
    const auto op_error = [&](Status s) {
      return Status(s.code(), "update op #" + std::to_string(i) + " (" +
                                  UpdateKindName(op.kind) +
                                  "): " + s.message());
    };
    switch (op.kind) {
      case UpdateKind::kInsertPoint: {
        if (next->point_shard.contains(op.id)) {
          return op_error(Status::AlreadyExists(
              "point id " + std::to_string(op.id) + " already present"));
        }
        const uint32_t s = RouteInsert(*next, op.location);
        shard_batches[s].push_back(op);
        next->point_shard[op.id] = s;
        Shard& shard = next->shards[s];
        shard.point_bounds =
            shard.point_bounds.Union(Rect::AtPoint(op.location));
        shard.seed_region =
            shard.seed_region.Union(Rect::AtPoint(op.location));
        break;
      }
      case UpdateKind::kErasePoint: {
        const auto it = next->point_shard.find(op.id);
        if (it == next->point_shard.end()) {
          return op_error(Status::NotFound(
              "point id " + std::to_string(op.id) + " not present"));
        }
        shard_batches[it->second].push_back(op);
        next->point_shard.erase(it);
        break;
      }
      case UpdateKind::kMovePoint: {
        const auto it = next->point_shard.find(op.id);
        if (it == next->point_shard.end()) {
          return op_error(Status::NotFound(
              "point id " + std::to_string(op.id) + " not present"));
        }
        const uint32_t from = it->second;
        const uint32_t to = RouteInsert(*next, op.location);
        if (from == to) {
          shard_batches[from].push_back(op);
        } else {
          shard_batches[from].push_back(UpdateOp::ErasePoint(op.id));
          shard_batches[to].push_back(
              UpdateOp::InsertPoint(op.id, op.location));
          it->second = to;
        }
        Shard& shard = next->shards[to];
        shard.point_bounds =
            shard.point_bounds.Union(Rect::AtPoint(op.location));
        shard.seed_region =
            shard.seed_region.Union(Rect::AtPoint(op.location));
        break;
      }
      case UpdateKind::kInsertUncertain: {
        if (!op.pdf.has_value()) {
          return op_error(
              Status::InvalidArgument("insert_uncertain op requires a pdf"));
        }
        if (next->uncertain_shard.contains(op.id)) {
          return op_error(Status::AlreadyExists(
              "uncertain id " + std::to_string(op.id) + " already present"));
        }
        const Rect region = PdfBounds(*op.pdf);
        const uint32_t s = RouteInsert(*next, region.Center());
        shard_batches[s].push_back(op);
        next->uncertain_shard[op.id] = s;
        Shard& shard = next->shards[s];
        shard.uncertain_bounds = shard.uncertain_bounds.Union(region);
        shard.seed_region =
            shard.seed_region.Union(Rect::AtPoint(region.Center()));
        break;
      }
      case UpdateKind::kEraseUncertain: {
        const auto it = next->uncertain_shard.find(op.id);
        if (it == next->uncertain_shard.end()) {
          return op_error(Status::NotFound(
              "uncertain id " + std::to_string(op.id) + " not present"));
        }
        shard_batches[it->second].push_back(op);
        next->uncertain_shard.erase(it);
        break;
      }
      case UpdateKind::kMoveUncertain: {
        if (!op.pdf.has_value()) {
          return op_error(
              Status::InvalidArgument("move_uncertain op requires a pdf"));
        }
        const auto it = next->uncertain_shard.find(op.id);
        if (it == next->uncertain_shard.end()) {
          return op_error(Status::NotFound(
              "uncertain id " + std::to_string(op.id) + " not present"));
        }
        const Rect region = PdfBounds(*op.pdf);
        const uint32_t from = it->second;
        const uint32_t to = RouteInsert(*next, region.Center());
        if (from == to) {
          shard_batches[from].push_back(op);
        } else {
          shard_batches[from].push_back(UpdateOp::EraseUncertain(op.id));
          shard_batches[to].push_back(
              UpdateOp::InsertUncertain(op.id, *op.pdf));
          it->second = to;
        }
        Shard& shard = next->shards[to];
        shard.uncertain_bounds = shard.uncertain_bounds.Union(region);
        shard.seed_region =
            shard.seed_region.Union(Rect::AtPoint(region.Center()));
        break;
      }
    }
  }

  // Pass 2 — apply each shard's sub-batch to a private fork of its engine.
  // The published set still points at the un-forked engines, so a reader
  // observes either the whole batch (new set) or none of it (old set).
  for (size_t s = 0; s < shard_count; ++s) {
    if (shard_batches[s].empty()) continue;
    auto fork =
        std::make_shared<QueryEngine>(next->shards[s].engine->Fork());
    ILQ_RETURN_NOT_OK(fork->ApplyUpdates(shard_batches[s]));
    next->shards[s].engine = std::move(fork);
  }

  control_->set.store(std::move(next), std::memory_order_release);
  control_->epoch.fetch_add(1, std::memory_order_release);

  // Load-driven re-split: dissolve routing hotspots once enough traffic
  // has accumulated to make the imbalance signal trustworthy.
  if (config_.resplit_load_ratio > 0.0 && shard_count > 1) {
    const ShardSetPtr current =
        control_->set.load(std::memory_order_acquire);
    uint64_t total = 0;
    uint64_t max_routed = 0;
    for (const Shard& shard : current->shards) {
      const uint64_t r = shard.routed->load(std::memory_order_relaxed);
      total += r;
      max_routed = std::max(max_routed, r);
    }
    if (total >= config_.resplit_min_requests) {
      const double mean = static_cast<double>(total) /
                          static_cast<double>(shard_count);
      if (static_cast<double>(max_routed) >
          config_.resplit_load_ratio * mean) {
        ILQ_RETURN_NOT_OK(ResplitLocked());
      }
    }
  }
  return Status::OK();
}

Status ShardedEngine::Resplit() {
  std::lock_guard<std::mutex> lock(control_->writer_mu);
  return ResplitLocked();
}

Status ShardedEngine::ResplitLocked() {
  const ShardSetPtr prev = control_->set.load(std::memory_order_acquire);
  // A re-split rebuilds every index in memory — silently converting a
  // disk-resident shard to RAM would defeat the point of mounting it.
  for (const Shard& shard : prev->shards) {
    if (shard.engine->is_paged()) {
      return Status::FailedPrecondition(
          "re-split rebuilds indexes in memory, but a shard engine is "
          "disk-resident (read-only)");
    }
  }
  // Gather the whole catalog at its *current* positions; each engine
  // snapshot is pinned while we copy out of it.
  std::vector<PointObject> points;
  std::vector<UncertainObject> uncertains;
  for (const Shard& shard : prev->shards) {
    const QueryEngine::SnapshotPtr snap = shard.engine->snapshot();
    points.insert(points.end(), snap->catalog->points.begin(),
                  snap->catalog->points.end());
    uncertains.insert(uncertains.end(), snap->catalog->uncertains.begin(),
                      snap->catalog->uncertains.end());
  }
  Result<ShardSet> rebuilt =
      BuildShardSet(std::move(points), std::move(uncertains), config_);
  if (!rebuilt.ok()) return rebuilt.status();
  control_->set.store(
      std::make_shared<const ShardSet>(std::move(rebuilt).ValueOrDie()),
      std::memory_order_release);
  control_->epoch.fetch_add(1, std::memory_order_release);
  control_->resplits.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t ShardedEngine::epoch() const {
  return control_->epoch.load(std::memory_order_acquire);
}

uint64_t ShardedEngine::resplit_count() const {
  return control_->resplits.load(std::memory_order_relaxed);
}

ShardLoadStats ShardedEngine::load_stats() const {
  const ShardSetPtr current = set();
  ShardLoadStats stats;
  stats.shards.reserve(current->shards.size());
  uint64_t total = 0;
  uint64_t max_routed = 0;
  for (const Shard& shard : current->shards) {
    ShardLoadStats::PerShard per;
    per.routed = shard.routed->load(std::memory_order_relaxed);
    const QueryEngine::SnapshotPtr snap = shard.engine->snapshot();
    per.points = snap->catalog->points.size();
    per.uncertains = snap->catalog->uncertains.size();
    total += per.routed;
    max_routed = std::max(max_routed, per.routed);
    stats.shards.push_back(per);
  }
  if (total > 0) {
    stats.imbalance = static_cast<double>(max_routed) *
                      static_cast<double>(stats.shards.size()) /
                      static_cast<double>(total);
  }
  return stats;
}

Result<UncertainObject> ShardedEngine::MakeIssuer(
    std::unique_ptr<UncertaintyPdf> pdf) const {
  if (pdf == nullptr) {
    return Status::InvalidArgument("issuer pdf must not be null");
  }
  UncertainObject issuer(/*id=*/0, std::move(pdf));
  ILQ_RETURN_NOT_OK(issuer.BuildCatalog(config_.engine.catalog_values));
  return issuer;
}

ShardedEngine::PinnedSet ShardedEngine::Pin() const {
  PinnedSet pinned;
  // Epoch before set (see the header contract): a publish landing between
  // the two loads leaves the recorded epoch older than the pinned shards,
  // which a later epoch() comparison flags as stale — conservative. The
  // retry just makes that spurious-invalidation window rare.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint64_t before = epoch();
    const ShardSetPtr current = set();
    pinned.epoch = before;
    pinned.shards.clear();
    pinned.shards.reserve(current->shards.size());
    for (const Shard& shard : current->shards) {
      pinned.shards.push_back(
          {shard.engine, shard.point_bounds, shard.uncertain_bounds});
    }
    if (epoch() == before) break;
  }
  return pinned;
}

size_t ShardedEngine::shard_count() const { return set()->shards.size(); }

const QueryEngine& ShardedEngine::shard(size_t i) const {
  return *control_->set.load(std::memory_order_acquire)->shards[i].engine;
}

Rect ShardedEngine::shard_point_bounds(size_t i) const {
  return set()->shards[i].point_bounds;
}

Rect ShardedEngine::shard_uncertain_bounds(size_t i) const {
  return set()->shards[i].uncertain_bounds;
}

}  // namespace ilq
