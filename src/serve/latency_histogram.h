// Streaming latency histogram for the async serving layer: fixed
// log-spaced buckets over [1 µs, ~100 s] with relaxed atomic counters, so
// Record is lock-free and wait-free on every worker thread while Quantile
// reads a consistent-enough snapshot for monitoring (p50/p95/p99 in
// ServeStats). Quantiles are approximate: the answer is the geometric
// midpoint of the bucket holding the requested rank, i.e. accurate to one
// bucket width (~33% relative — the usual resolution for serving-latency
// telemetry; buckets, not samples, keep memory constant under millions of
// requests).

#ifndef ILQ_SERVE_LATENCY_HISTOGRAM_H_
#define ILQ_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace ilq {

/// \brief Lock-free log-bucketed histogram of millisecond latencies.
class LatencyHistogram {
 public:
  /// Bucket i covers [kMinMs * kGrowth^i, kMinMs * kGrowth^(i+1)); the
  /// first and last buckets additionally absorb underflow / overflow.
  static constexpr size_t kBuckets = 64;
  static constexpr double kMinMs = 1e-3;   // 1 µs
  static constexpr double kMaxMs = 1e5;    // 100 s

  LatencyHistogram() = default;

  // Atomics are not copyable; the histogram is shared by reference between
  // the server's workers and snapshotted via Quantile/TotalCount.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation. Thread-safe, lock-free.
  void Record(double ms) {
    buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Observations recorded so far (racing Records may or may not count).
  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  /// Approximate \p q-quantile (q in [0, 1]) in milliseconds; 0 when empty.
  /// Nearest-rank over the bucket counts, reported at the bucket's
  /// geometric midpoint.
  double Quantile(double q) const {
    std::array<uint64_t, kBuckets> snapshot;
    uint64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snapshot[i];
    }
    if (total == 0) return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                  q * static_cast<double>(total))));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += snapshot[i];
      if (seen >= rank) return BucketMidpointMs(i);
    }
    return BucketMidpointMs(kBuckets - 1);
  }

  /// Forgets all observations (not linearizable against racing Records;
  /// callers quiesce workers first — e.g. between bench phases).
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Lower edge of bucket \p i in milliseconds (test / display helper).
  static double BucketLowerMs(size_t i) {
    return kMinMs * std::pow(Growth(), static_cast<double>(i));
  }

 private:
  static double Growth() {
    // kBuckets equal log-width buckets spanning [kMinMs, kMaxMs].
    static const double g =
        std::pow(kMaxMs / kMinMs, 1.0 / static_cast<double>(kBuckets));
    return g;
  }

  static size_t BucketIndex(double ms) {
    if (!(ms > kMinMs)) return 0;  // also catches NaN and negatives
    const double raw = std::log(ms / kMinMs) / std::log(Growth());
    const auto i = static_cast<size_t>(raw);
    return i >= kBuckets ? kBuckets - 1 : i;
  }

  static double BucketMidpointMs(size_t i) {
    return BucketLowerMs(i) * std::sqrt(Growth());
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

}  // namespace ilq

#endif  // ILQ_SERVE_LATENCY_HISTOGRAM_H_
