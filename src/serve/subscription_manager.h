// SubscriptionManager — the continuous-query tier of the serving layer
// (ROADMAP "moving issuers & continuous queries", sharded/async flavour).
//
// ContinuousEngine (continuous/continuous_engine.h) runs moving-issuer
// sessions against one monolithic QueryEngine. This manager runs the same
// protocol — Register once, stream UpdatePosition, every answer carrying a
// valid region — against the serving stack: the catalog is a ShardedEngine,
// evaluation work is multiplexed over the AsyncServer's worker queue
// (backpressure, latency histogram and per-method counters included), and
// the server's AnswerCache is used for cross-update reuse via its region
// entries (serve/answer_cache.h).
//
// A subscription's basis is a SubscriptionBasis: one CandidateBasis per
// shard whose bounds intersect the prefetch box, pinned at one published
// ShardedEngine epoch (ShardedEngine::Pin). Replay merges the per-shard
// replays and canonicalizes — bit-identical to ShardedEngine::Run for every
// issuer placement inside the valid region at that epoch, by the same
// argument that makes the sharded tier itself exact (disjoint shards whose
// bounds cover their members + per-candidate pure probabilities).
//
// Update flow (per session, under its own lock):
//   1. cache LookupRegion — an *exact* hit (issuer pdf fingerprint
//      unchanged) returns the stored answers outright; a *containment* hit
//      re-adopts the shared basis (this is how a re-registered subscriber
//      skips the rebuild after churn);
//   2. a session basis that is epoch-fresh and contains the issuer region
//      answers by replay (validation);
//   3. otherwise the basis is rebuilt re-centred on the new position
//      (re-evaluation) and replayed.
// Replays and post-rebuild evaluations run as SubmitTask closures on the
// server's workers. Validations vs re-evaluations (and the cache's exact
// vs containment splits) surface in ServeStats via stats().
//
// INN sessions are not served at this tier — the probabilistic-Voronoi
// valid region is a monolith feature (ContinuousEngine::RegisterInn).

#ifndef ILQ_SERVE_SUBSCRIPTION_MANAGER_H_
#define ILQ_SERVE_SUBSCRIPTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "continuous/candidate_basis.h"
#include "continuous/continuous_engine.h"
#include "core/batch.h"
#include "serve/answer_cache.h"
#include "serve/async_server.h"
#include "serve/sharded_engine.h"

namespace ilq {

/// \brief One prefetched evaluation basis spanning the sharded catalog: a
/// CandidateBasis per shard whose routing bounds intersect the prefetch
/// box, all pinned at one published ShardedEngine epoch. Immutable after
/// build and shared (shared_ptr) between the session that built it and any
/// AnswerCache region entry that outlives the session.
struct SubscriptionBasis {
  Rect valid_region = Rect::Empty();
  /// ShardedEngine epoch the shards were pinned at (conservative under a
  /// racing publish — see ShardedEngine::Pin).
  uint64_t epoch = 0;
  /// Resolved per-shard engine config; carries the evaluator options the
  /// replay needs, so the basis stays self-contained.
  EngineConfig config;
  std::vector<CandidateBasis> shards;

  size_t candidate_count() const {
    size_t n = 0;
    for (const CandidateBasis& b : shards) n += b.candidate_count();
    return n;
  }
};

/// Builds the basis for \p method over \p valid_region: pins the published
/// shard set and prefetches a CandidateBasis from every shard whose
/// routing bounds intersect valid_region ⊕ R(spec.w, spec.h) — the same
/// conservative Lemma-1 test ShardedEngine::Run routes with, widened from
/// one issuer placement to the whole valid region.
Result<std::shared_ptr<const SubscriptionBasis>> BuildSubscriptionBasis(
    const ShardedEngine& engine, QueryMethod method, const Rect& valid_region,
    const RangeQuerySpec& spec);

/// Replays \p basis for one issuer placement: per-shard index-free replay,
/// merged and canonicalized. Bit-identical to ShardedEngine::Run at the
/// basis epoch for every issuer.region() ⊆ basis.valid_region.
AnswerSet ReplaySubscriptionBasis(const SubscriptionBasis& basis,
                                  QueryMethod method,
                                  const UncertainObject& issuer,
                                  const BatchSpec& spec);

/// \brief Manager knobs (same semantics as ContinuousOptions).
struct SubscriptionOptions {
  /// Valid-region half-extent; <= 0 resolves per session from the issuer
  /// region (then spec, then 1) exactly like ContinuousOptions::horizon.
  double horizon = 0.0;

  /// When false, every update rebuilds the basis (and skips the cache) —
  /// the naive per-step baseline bench/continuous_throughput sweeps
  /// against.
  bool reuse = true;
};

/// \brief Register/UpdatePosition/Unregister over AsyncServer+ShardedEngine.
///
/// Thread safety: all members are safe to call concurrently (per-session
/// locks, atomic counters), and concurrently with engine updates — answers
/// are coherent with exactly one basis epoch, returned alongside them.
/// Must not be called from the server's own worker threads (SubmitTask's
/// future would wait on the pool it occupies).
class SubscriptionManager {
 public:
  /// \p server must outlive the manager.
  explicit SubscriptionManager(AsyncServer* server,
                               SubscriptionOptions options = {});

  struct Registered {
    SubscriptionId id = 0;
    ContinuousAnswer answer;
  };

  /// Registers one range/threshold session (any of the eight QueryMethods)
  /// and evaluates it at the issuer's initial position. A cache
  /// containment hit (same issuer id + spec, region still covered) adopts
  /// the cached basis instead of rebuilding — re-registration churn does
  /// not cost a prefetch.
  Result<Registered> Register(QueryMethod method, const BatchSpec& spec,
                              const UncertainObject& issuer);

  /// Answers the session at the issuer's new (imprecise) position; see the
  /// file comment for the exact reuse ladder.
  Result<ContinuousAnswer> UpdatePosition(SubscriptionId id,
                                          const UncertainObject& issuer);

  /// Drops the session (cache region entries linger until evicted or
  /// invalidated — that is the churn-reuse feature, not a leak: entries
  /// are bounded by the cache capacity). kNotFound for unknown ids.
  Status Unregister(SubscriptionId id);

  /// Validation/re-evaluation counters of this manager.
  ContinuousStats continuous_stats() const;

  /// The server's ServeStats with the continuous_* fields filled in.
  ServeStats stats() const;

  AsyncServer& server() { return *server_; }
  const SubscriptionOptions& options() const { return options_; }

 private:
  struct Session {
    std::mutex mu;
    QueryMethod method = QueryMethod::kIpq;
    BatchSpec spec;
    double horizon = 0.0;
    std::shared_ptr<const SubscriptionBasis> basis;
  };
  using SessionPtr = std::shared_ptr<Session>;

  // Answers \p session for \p issuer (cache → session basis → rebuild);
  // assumes session->mu is held.
  Status Answer(Session* session, const UncertainObject& issuer,
                ContinuousAnswer* out);
  SessionPtr FindSession(SubscriptionId id) const;
  double ResolveHorizon(const Rect& region, const BatchSpec& spec) const;

  AsyncServer* server_;
  SubscriptionOptions options_;

  mutable std::mutex mu_;  // guards sessions_ and next_id_
  SubscriptionId next_id_ = 1;
  std::unordered_map<SubscriptionId, SessionPtr> sessions_;

  std::atomic<uint64_t> registrations_{0};
  std::atomic<uint64_t> validations_{0};
  std::atomic<uint64_t> reevaluations_{0};
  std::atomic<uint64_t> unregistrations_{0};
};

}  // namespace ilq

#endif  // ILQ_SERVE_SUBSCRIPTION_MANAGER_H_
