// AsyncServer — futures-based query serving over a ShardedEngine
// (ROADMAP "scaling" item: async serving).
//
// Clients call Submit(issuer, spec, method) and get a
// std::future<AnswerSet>; a fixed set of long-lived worker threads pulls
// requests off a bounded queue and evaluates them against the thread-safe
// ShardedEngine (queries run concurrently with catalog updates; every
// answer — and every cache entry, via epoch tagging — reflects exactly one
// published epoch). Backpressure: when the queue is full, Submit
// blocks until a slot frees and TrySubmit returns nullopt instead.
// Shutdown is graceful — accepted requests are drained, their futures all
// complete, and only then do the workers join.
//
// The worker set is intentionally NOT common/ThreadPool: that class is a
// fork-join primitive (one ParallelFor at a time, the caller participates)
// built for batch evaluation, while serving needs long-lived workers on a
// bounded MPMC queue. The server reuses the pool's sizing policy
// (ThreadPool::DefaultThreadCount) and composes with RunBatch-style use of
// the engine, but owns its own threads.
//
// An optional AnswerCache short-circuits repeated queries at submission
// time. Only issuers with a non-zero id are cached — id 0 is the
// anonymous-issuer default and carries no identity (see
// serve/answer_cache.h's keying contract).

#ifndef ILQ_SERVE_ASYNC_SERVER_H_
#define ILQ_SERVE_ASYNC_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/batch.h"
#include "serve/answer_cache.h"
#include "serve/latency_histogram.h"
#include "serve/sharded_engine.h"

namespace ilq {

/// \brief Server construction knobs.
struct AsyncServerOptions {
  /// Worker threads. 0 = ThreadPool::DefaultThreadCount().
  size_t threads = 0;

  /// Pending-request slots; Submit blocks (TrySubmit refuses) when the
  /// queue holds this many not-yet-started requests. Clamped to >= 1.
  size_t queue_capacity = 256;

  /// AnswerCache entries; 0 disables caching.
  size_t cache_capacity = 0;

  /// Lock shards of the answer cache (see AnswerCache).
  size_t cache_shards = 8;

  /// When true, workers hold off executing until Resume() — submissions
  /// queue up (and TrySubmit exercises backpressure deterministically,
  /// which is how the tests use it; admission control / warmup in a real
  /// deployment). Shutdown() resumes a paused server so draining cannot
  /// deadlock.
  bool start_paused = false;
};

/// \brief Counter snapshot returned by AsyncServer::stats().
struct ServeStats {
  uint64_t submitted = 0;  ///< accepted (queued or served from cache)
  uint64_t completed = 0;  ///< futures fulfilled (including cache hits)
  uint64_t rejected = 0;   ///< TrySubmit refusals (queue full)
  uint64_t pending = 0;    ///< queued + executing right now
  std::array<uint64_t, kQueryMethodCount> per_method{};  ///< by QueryMethod

  uint64_t cache_hits = 0;  ///< total = exact + containment
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;  ///< stale-epoch entries dropped
  /// Split of cache_hits (see AnswerCache::Counters): full-answer reuse vs
  /// region-containment basis reuse — the continuous bench reports both.
  uint64_t cache_exact_hits = 0;
  uint64_t cache_containment_hits = 0;

  /// Continuous tier (filled by SubscriptionManager::stats(); zero from
  /// AsyncServer::stats() itself): subscription updates answered inside a
  /// valid region vs basis (re)builds.
  uint64_t continuous_validations = 0;
  uint64_t continuous_reevaluations = 0;
  uint64_t continuous_active = 0;  ///< currently registered subscriptions

  /// Submission-to-completion latency quantiles (ms) over all completed
  /// requests; cache hits count with their (near-zero) service time.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// \brief Bounded-queue, futures-based serving front-end.
class AsyncServer {
 public:
  /// \p engine must outlive the server.
  explicit AsyncServer(const ShardedEngine& engine,
                       AsyncServerOptions options = AsyncServerOptions{});

  /// Graceful: equivalent to Shutdown().
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  /// Enqueues one query; blocks while the queue is full. The issuer is
  /// copied into the request (the caller's object need not outlive it).
  /// Throws std::logic_error when called after Shutdown.
  std::future<AnswerSet> Submit(const UncertainObject& issuer,
                                const BatchSpec& spec, QueryMethod method);

  /// Non-blocking Submit: nullopt (and stats().rejected++) when the queue
  /// is full. Throws std::logic_error when called after Shutdown.
  std::optional<std::future<AnswerSet>> TrySubmit(
      const UncertainObject& issuer, const BatchSpec& spec,
      QueryMethod method);

  /// Runs an arbitrary evaluation closure on the worker pool, queued,
  /// counted (per_method under \p method) and latency-tracked exactly like
  /// a query — but never touching the AnswerCache; the caller owns its
  /// caching policy. The continuous tier (serve/subscription_manager.h)
  /// submits basis replays here so subscription traffic shares the queue,
  /// backpressure and ServeStats with one-shot queries. Blocks while the
  /// queue is full; throws std::logic_error after Shutdown. Must not be
  /// called from a worker thread (the closure's future would wait on the
  /// pool it occupies).
  std::future<AnswerSet> SubmitTask(QueryMethod method,
                                    std::function<AnswerSet()> task);

  /// The server's AnswerCache (disabled when cache_capacity == 0). Shared
  /// with the subscription tier: region entries and one-shot entries live
  /// in the same LRU shards and feed the same counters.
  AnswerCache& cache() { return cache_; }

  /// Releases a start_paused server's workers. Idempotent.
  void Resume();

  /// Blocks until every accepted request has completed. Does not stop the
  /// server; new submissions keep being accepted (a concurrent submitter
  /// can therefore extend the wait). A paused server must be Resume()d (or
  /// Shutdown()) first, or Drain waits forever on the parked queue.
  void Drain();

  /// Stops accepting, drains outstanding requests, joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  ServeStats stats() const;

  size_t thread_count() const { return workers_.size(); }
  const ShardedEngine& engine() const { return engine_; }

 private:
  struct Request {
    // Engine queries carry an issuer; SubmitTask closures do not.
    std::optional<UncertainObject> issuer;
    BatchSpec spec;
    QueryMethod method = QueryMethod::kIpq;
    std::promise<AnswerSet> promise;
    Stopwatch since_submit;
    bool cacheable = false;
    CacheKey key;
    std::function<AnswerSet()> task;  // set ⇒ run this instead of the engine
  };

  void WorkerLoop();
  void Execute(Request request);
  std::future<AnswerSet> Enqueue(std::unique_lock<std::mutex> lock,
                                 Request request);
  void CountSubmission(QueryMethod method);

  const ShardedEngine& engine_;
  AsyncServerOptions options_;
  AnswerCache cache_;
  LatencyHistogram latency_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;   // workers wait for work / shutdown
  std::condition_variable not_full_;    // submitters wait for a slot
  std::condition_variable drained_;     // Drain/Shutdown wait for idle
  std::deque<Request> queue_;
  size_t executing_ = 0;     // popped but not yet completed
  bool paused_ = false;
  bool stopping_ = false;    // no new submissions; workers drain and exit
  bool joining_ = false;     // some thread is joining the workers
  bool joined_ = false;

  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::array<std::atomic<uint64_t>, kQueryMethodCount> per_method_{};
};

}  // namespace ilq

#endif  // ILQ_SERVE_ASYNC_SERVER_H_
