#include "serve/async_server.h"

#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace ilq {

AsyncServer::AsyncServer(const ShardedEngine& engine,
                         AsyncServerOptions options)
    : engine_(engine),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      paused_(options.start_paused) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  const size_t threads = options_.threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options_.threads;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncServer::~AsyncServer() { Shutdown(); }

void AsyncServer::CountSubmission(QueryMethod method) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  per_method_[static_cast<size_t>(method)].fetch_add(
      1, std::memory_order_relaxed);
}

std::future<AnswerSet> AsyncServer::Enqueue(
    std::unique_lock<std::mutex> lock, Request request) {
  // The Stopwatch starts the latency clock at enqueue.
  std::future<AnswerSet> future = request.promise.get_future();
  const QueryMethod method = request.method;
  queue_.push_back(std::move(request));
  CountSubmission(method);
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

std::future<AnswerSet> AsyncServer::Submit(const UncertainObject& issuer,
                                           const BatchSpec& spec,
                                           QueryMethod method) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    throw std::logic_error("AsyncServer::Submit after Shutdown");
  }
  Request request{issuer, spec, method, std::promise<AnswerSet>{},
                  Stopwatch{}, /*cacheable=*/false, CacheKey{}, nullptr};
  request.cacheable = cache_.enabled() && issuer.id() != 0;
  if (request.cacheable) request.key = MakeCacheKey(issuer, method, spec);
  return Enqueue(std::move(lock), std::move(request));
}

std::optional<std::future<AnswerSet>> AsyncServer::TrySubmit(
    const UncertainObject& issuer, const BatchSpec& spec,
    QueryMethod method) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    throw std::logic_error("AsyncServer::TrySubmit after Shutdown");
  }
  if (queue_.size() >= options_.queue_capacity) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Request request{issuer, spec, method, std::promise<AnswerSet>{},
                  Stopwatch{}, /*cacheable=*/false, CacheKey{}, nullptr};
  request.cacheable = cache_.enabled() && issuer.id() != 0;
  if (request.cacheable) request.key = MakeCacheKey(issuer, method, spec);
  return Enqueue(std::move(lock), std::move(request));
}

std::future<AnswerSet> AsyncServer::SubmitTask(
    QueryMethod method, std::function<AnswerSet()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    throw std::logic_error("AsyncServer::SubmitTask after Shutdown");
  }
  Request request{std::nullopt, BatchSpec{}, method,
                  std::promise<AnswerSet>{}, Stopwatch{},
                  /*cacheable=*/false, CacheKey{}, std::move(task)};
  return Enqueue(std::move(lock), std::move(request));
}

void AsyncServer::Execute(Request request) {
  // Cache lookup happens here, off the submission path: Lookup refreshes
  // LRU recency and may contend on the shard lock, and a hit still counts
  // as real service (latency includes its queue wait). The engine epoch is
  // read once up front: a hit is only valid at the epoch we would answer
  // at, and the fresh answer is only cached when no update published while
  // we were evaluating (an answer from a superseded epoch must not be
  // stored as current).
  const uint64_t epoch = engine_.epoch();
  if (request.cacheable) {
    if (std::optional<AnswerSet> hit = cache_.Lookup(request.key, epoch)) {
      request.promise.set_value(*std::move(hit));
      latency_.Record(request.since_submit.ElapsedMillis());
      completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  try {
    AnswerSet answers =
        request.task != nullptr
            ? request.task()
            : engine_.Run(request.method, *request.issuer, request.spec);
    if (request.cacheable && engine_.epoch() == epoch) {
      cache_.Insert(request.key, answers, epoch);
    }
    request.promise.set_value(std::move(answers));
  } catch (...) {
    request.promise.set_exception(std::current_exception());
  }
  latency_.Record(request.since_submit.ElapsedMillis());
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    not_empty_.wait(lock, [&] {
      return (!paused_ && !queue_.empty()) || (stopping_ && queue_.empty());
    });
    if (queue_.empty()) return;  // stopping_ && drained → exit
    Request request = std::move(queue_.front());
    queue_.pop_front();
    ++executing_;
    lock.unlock();
    not_full_.notify_one();

    Execute(std::move(request));

    lock.lock();
    --executing_;
    if (queue_.empty() && executing_ == 0) drained_.notify_all();
  }
}

void AsyncServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  not_empty_.notify_all();
}

void AsyncServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return queue_.empty() && executing_ == 0; });
}

void AsyncServer::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  if (joined_) return;
  stopping_ = true;
  paused_ = false;  // a paused server must still drain
  if (joining_) {
    // Another thread is already joining the workers; wait for it.
    drained_.wait(lock, [&] { return joined_; });
    return;
  }
  joining_ = true;
  lock.unlock();
  // Wake everyone: blocked submitters observe stopping_ and throw, workers
  // drain the queue and exit once it is empty.
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  lock.lock();
  joined_ = true;
  drained_.notify_all();
}

ServeStats AsyncServer::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kQueryMethodCount; ++i) {
    stats.per_method[i] = per_method_[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.pending = queue_.size() + executing_;
  }
  const AnswerCache::Counters cache = cache_.counters();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_invalidations = cache.invalidations;
  stats.cache_exact_hits = cache.exact_hits;
  stats.cache_containment_hits = cache.containment_hits;
  stats.p50_ms = latency_.Quantile(0.50);
  stats.p95_ms = latency_.Quantile(0.95);
  stats.p99_ms = latency_.Quantile(0.99);
  return stats;
}

}  // namespace ilq
