#include "serve/subscription_manager.h"

#include <algorithm>
#include <utility>

#include "wire/message.h"

namespace ilq {

namespace {

// Portable byte fingerprint of the issuer's pdf (placement identity for
// cache exact hits). Empty when the pdf has no portable encoding (AnyPdf)
// — such issuers never exact-hit, only containment-hit, which needs no
// identity beyond the region.
std::vector<uint8_t> PdfFingerprint(const UncertainObject& issuer) {
  ByteWriter writer;
  if (!EncodePdf(issuer.pdf_variant(), &writer).ok()) return {};
  return std::move(writer).Take();
}

}  // namespace

Result<std::shared_ptr<const SubscriptionBasis>> BuildSubscriptionBasis(
    const ShardedEngine& engine, QueryMethod method, const Rect& valid_region,
    const RangeQuerySpec& spec) {
  if (valid_region.IsEmpty()) {
    return Status::InvalidArgument("valid region must be non-empty");
  }
  auto basis = std::make_shared<SubscriptionBasis>();
  basis->valid_region = valid_region;
  basis->config = engine.config().engine;
  // Same box CandidateBasis prefetches over; shards outside it cannot hold
  // a candidate for any placement in the valid region (Lemma 1).
  const Rect prefetch = valid_region.Expanded(spec.w, spec.h);
  const bool use_points = QueryMethodUsesPoints(method);

  const ShardedEngine::PinnedSet pinned = engine.Pin();
  basis->epoch = pinned.epoch;
  for (const ShardedEngine::PinnedShard& shard : pinned.shards) {
    const Rect& bounds =
        use_points ? shard.point_bounds : shard.uncertain_bounds;
    if (!bounds.Intersects(prefetch)) continue;
    Result<CandidateBasis> shard_basis =
        BuildCandidateBasis(*shard.engine, method, valid_region, spec);
    ILQ_RETURN_NOT_OK(shard_basis.status());
    basis->shards.push_back(std::move(shard_basis).ValueOrDie());
  }
  return std::shared_ptr<const SubscriptionBasis>(std::move(basis));
}

AnswerSet ReplaySubscriptionBasis(const SubscriptionBasis& basis,
                                  QueryMethod method,
                                  const UncertainObject& issuer,
                                  const BatchSpec& spec) {
  AnswerSet merged;
  for (const CandidateBasis& shard : basis.shards) {
    AnswerSet answers =
        ReplayQueryMethod(shard, basis.config, method, issuer, spec);
    merged.insert(merged.end(), std::make_move_iterator(answers.begin()),
                  std::make_move_iterator(answers.end()));
  }
  // Same merge ShardedEngine::Run performs (disjoint shards ⇒ the sort is
  // the only observable effect).
  CanonicalizeAnswers(&merged);
  return merged;
}

SubscriptionManager::SubscriptionManager(AsyncServer* server,
                                         SubscriptionOptions options)
    : server_(server), options_(options) {}

double SubscriptionManager::ResolveHorizon(const Rect& region,
                                           const BatchSpec& spec) const {
  if (options_.horizon > 0.0) return options_.horizon;
  double h = std::max(region.Width(), region.Height());
  if (h <= 0.0) h = std::max(spec.query.w, spec.query.h);
  return h > 0.0 ? h : 1.0;
}

Status SubscriptionManager::Answer(Session* session,
                                   const UncertainObject& issuer,
                                   ContinuousAnswer* out) {
  if (issuer.region().IsEmpty()) {
    return Status::InvalidArgument("issuer region must be non-empty");
  }
  const ShardedEngine& engine = server_->engine();
  const uint64_t epoch = engine.epoch();

  // Rung 1 — the cache's region entry (reuse across updates *and* across
  // register/unregister churn of the same issuer id + spec).
  const bool cacheable =
      options_.reuse && server_->cache().enabled() && issuer.id() != 0;
  CacheKey key;
  std::vector<uint8_t> fingerprint;
  if (cacheable) {
    key = MakeCacheKey(issuer, session->method, session->spec);
    fingerprint = PdfFingerprint(issuer);
    if (std::optional<AnswerCache::RegionHit> hit =
            server_->cache().LookupRegion(key, issuer.region(), fingerprint,
                                          epoch)) {
      if (hit->basis != nullptr) session->basis = hit->basis;
      if (hit->exact) {
        // The issuer has not moved: the stored answers are its answers.
        out->answers = std::move(hit->answers);
        out->valid_region = hit->valid_region;
        out->epoch = epoch;
        out->revalidated = true;
        validations_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
  }

  // Rung 2 — the session basis; rung 3 — rebuild re-centred on the issuer.
  const bool covered =
      options_.reuse && session->basis != nullptr &&
      session->basis->epoch == epoch &&
      session->basis->valid_region.ContainsRect(issuer.region());
  if (!covered) {
    const Rect valid =
        issuer.region().Expanded(session->horizon, session->horizon);
    Result<std::shared_ptr<const SubscriptionBasis>> rebuilt =
        BuildSubscriptionBasis(engine, session->method, valid,
                               session->spec.query);
    ILQ_RETURN_NOT_OK(rebuilt.status());
    session->basis = std::move(rebuilt).ValueOrDie();
  }

  // Both paths answer by replay on the server's workers: subscription
  // traffic shares the queue, backpressure and latency accounting with
  // one-shot queries.
  const std::shared_ptr<const SubscriptionBasis> basis = session->basis;
  const QueryMethod method = session->method;
  const BatchSpec spec = session->spec;
  out->answers = server_
                     ->SubmitTask(method,
                                  [basis, issuer, method, spec] {
                                    return ReplaySubscriptionBasis(
                                        *basis, method, issuer, spec);
                                  })
                     .get();
  out->valid_region = basis->valid_region;
  out->epoch = basis->epoch;
  out->revalidated = covered;
  (covered ? validations_ : reevaluations_)
      .fetch_add(1, std::memory_order_relaxed);
  if (cacheable) {
    server_->cache().InsertRegion(key, out->answers, std::move(fingerprint),
                                  basis->valid_region, basis, basis->epoch);
  }
  return Status::OK();
}

Result<SubscriptionManager::Registered> SubscriptionManager::Register(
    QueryMethod method, const BatchSpec& spec,
    const UncertainObject& issuer) {
  if (issuer.region().IsEmpty()) {
    return Status::InvalidArgument("issuer region must be non-empty");
  }
  auto session = std::make_shared<Session>();
  session->method = method;
  session->spec = spec;
  session->horizon = ResolveHorizon(issuer.region(), spec);

  Registered registered;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    ILQ_RETURN_NOT_OK(Answer(session.get(), issuer, &registered.answer));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered.id = next_id_++;
    sessions_.emplace(registered.id, std::move(session));
  }
  registrations_.fetch_add(1, std::memory_order_relaxed);
  return registered;
}

SubscriptionManager::SessionPtr SubscriptionManager::FindSession(
    SubscriptionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<ContinuousAnswer> SubscriptionManager::UpdatePosition(
    SubscriptionId id, const UncertainObject& issuer) {
  const SessionPtr session = FindSession(id);
  if (session == nullptr) {
    return Status::NotFound("unknown subscription id");
  }
  ContinuousAnswer answer;
  std::lock_guard<std::mutex> lock(session->mu);
  ILQ_RETURN_NOT_OK(Answer(session.get(), issuer, &answer));
  return answer;
}

Status SubscriptionManager::Unregister(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("unknown subscription id");
  }
  unregistrations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

ContinuousStats SubscriptionManager::continuous_stats() const {
  ContinuousStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.active = sessions_.size();
  }
  stats.registrations = registrations_.load(std::memory_order_relaxed);
  stats.validations = validations_.load(std::memory_order_relaxed);
  stats.reevaluations = reevaluations_.load(std::memory_order_relaxed);
  stats.unregistrations = unregistrations_.load(std::memory_order_relaxed);
  return stats;
}

ServeStats SubscriptionManager::stats() const {
  ServeStats stats = server_->stats();
  const ContinuousStats continuous = continuous_stats();
  stats.continuous_validations = continuous.validations;
  stats.continuous_reevaluations = continuous.reevaluations;
  stats.continuous_active = continuous.active;
  return stats;
}

}  // namespace ilq
