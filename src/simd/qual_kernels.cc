// Scalar reference kernels, the SSE2 tier, and the overlay that builds the
// four per-tier dispatch tables.
//
// Bit-identity notes (the strict-mode contract of qual_kernels.h):
//
//   * std::min(a, b) returns `b < a ? b : a`; the SSE minpd/maxpd family
//     returns src2 when the compare is false. So std::min(a, b) is exactly
//     min_pd(src1 = b, src2 = a) — every wide kernel swaps operands this
//     way, which makes even the ±0.0 and NaN corner cases match the scalar
//     std::min/std::max lane for lane.
//   * _mm_cmpge_pd / _mm_cmple_pd are ordered compares (false on NaN) on
//     every compiler we target; the AVX tiers spell it explicitly with
//     _CMP_GE_OQ / _CMP_LE_OQ. Ordered-false-on-NaN is what lets the
//     sample blocks NaN-pad their tails instead of masking.
//   * Selects are bitwise AND with an all-ones/all-zeros compare mask:
//     mask & v is v or +0.0, exactly the scalar `inside ? v : 0.0`.
//   * The build compiles everything with -ffp-contract=off, so neither the
//     scalar loops here nor the pdf members they must match can silently
//     fuse a*b+c into an FMA.

#include "simd/qual_kernels.h"

#include <algorithm>
#include <array>

#include "simd/qual_kernels_internal.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ilq::simd {
namespace internal {

// ---- Scalar reference kernels ---------------------------------------------
// These replay the pdf members' arithmetic exactly (see prob/uniform_pdf.cc,
// prob/disk_pdf.cc, prob/histogram_pdf.cc) — the differential suites pin
// kernel-vs-pdf and tier-vs-scalar both.

void UniformDensityScalar(const UniformRectParams& p, const Point* pts,
                          size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const bool inside = (pts[i].x >= p.xmin) & (pts[i].x <= p.xmax) &
                        (pts[i].y >= p.ymin) & (pts[i].y <= p.ymax);
    out[i] = inside ? p.inv_area : 0.0;
  }
}

void UniformMassInScalar(const UniformRectParams& p, const Rect* rects,
                         size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double w =
        std::min(p.xmax, rects[i].xmax) - std::max(p.xmin, rects[i].xmin);
    const double h =
        std::min(p.ymax, rects[i].ymax) - std::max(p.ymin, rects[i].ymin);
    out[i] = (std::max(w, 0.0) * std::max(h, 0.0)) * p.inv_area;
  }
}

void UniformMassCenteredScalar(const UniformRectParams& p,
                               const Point* centers, size_t n, double w,
                               double h, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double ov_w =
        std::min(p.xmax, centers[i].x + w) - std::max(p.xmin, centers[i].x - w);
    const double ov_h =
        std::min(p.ymax, centers[i].y + h) - std::max(p.ymin, centers[i].y - h);
    out[i] = (std::max(ov_w, 0.0) * std::max(ov_h, 0.0)) * p.inv_area;
  }
}

void DiskDensityScalar(const DiskParams& p, const Point* pts, size_t n,
                       double* out) {
  // Circle::Contains computes (c - p) deltas; negation is exact, so the
  // squares (and their sum, with contraction off) match either direction.
  for (size_t i = 0; i < n; ++i) {
    const double dx = p.cx - pts[i].x;
    const double dy = p.cy - pts[i].y;
    const bool inside = (dx * dx + dy * dy) <= p.r2;
    out[i] = inside ? p.inv_area : 0.0;
  }
}

void HistogramDensityScalar(const HistogramParams& p, const Point* pts,
                            size_t n, double* out) {
  const int32_t nx1 = p.nx - 1;
  const int32_t ny1 = p.ny - 1;
  for (size_t i = 0; i < n; ++i) {
    const double x = pts[i].x;
    const double y = pts[i].y;
    const bool inside =
        (x >= p.xmin) & (x <= p.xmax) & (y >= p.ymin) & (y <= p.ymax);
    if (!inside) {
      out[i] = 0.0;
      continue;
    }
    // Inside implies 0 <= (x - xmin)/cell_w <~ nx, so the truncating cast
    // matches HistogramPdf::Density's size_t cast for every in-range lane.
    auto ix = static_cast<int32_t>((x - p.xmin) / p.cell_w);
    auto iy = static_cast<int32_t>((y - p.ymin) / p.cell_h);
    ix = std::min(ix, nx1);  // right/top boundary belongs to the last cell
    iy = std::min(iy, ny1);
    out[i] = p.mass[static_cast<size_t>(iy) * static_cast<size_t>(p.nx) +
                    static_cast<size_t>(ix)] /
             p.cell_area;
  }
}

void GaussianMassCenteredScalar(const GaussianParams& p, const Point* centers,
                                size_t n, double w, double h, double* out) {
  // Replays TruncatedGaussianPdf::MassIn(Rect::Centered(c, w, h)):
  // Rect::Intersection's std::max(region, query)/std::min(region, query)
  // operand order (NaN probe bounds lose to the region bounds, so a NaN
  // center clamps to the whole region and yields the full mass, exactly as
  // the pdf member does), Rect::IsEmpty's `min > max` test, then the
  // product of per-axis Cdf1D interval masses.
  for (size_t i = 0; i < n; ++i) {
    const double ixmin = std::max(p.xmin, centers[i].x - w);
    const double ixmax = std::min(p.xmax, centers[i].x + w);
    const double iymin = std::max(p.ymin, centers[i].y - h);
    const double iymax = std::min(p.ymax, centers[i].y + h);
    if (ixmin > ixmax || iymin > iymax) {
      out[i] = 0.0;
      continue;
    }
    const double fx = GaussianCdf1D(ixmax, p.mux, p.sx, p.xmin, p.xmax,
                                    p.mass_x, p.cdf_lo_x, p.normal_cdf) -
                      GaussianCdf1D(ixmin, p.mux, p.sx, p.xmin, p.xmax,
                                    p.mass_x, p.cdf_lo_x, p.normal_cdf);
    const double fy = GaussianCdf1D(iymax, p.muy, p.sy, p.ymin, p.ymax,
                                    p.mass_y, p.cdf_lo_y, p.normal_cdf) -
                      GaussianCdf1D(iymin, p.muy, p.sy, p.ymin, p.ymax,
                                    p.mass_y, p.cdf_lo_y, p.normal_cdf);
    out[i] = fx * fy;
  }
}

size_t CountInRectScalar(double xmin, double xmax, double ymin, double ymax,
                         const double* xs, const double* ys, size_t n) {
  // NaN (padding) lanes fail every ordered compare; an empty rect
  // (min > max) can satisfy no lane — both match Rect::Contains.
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    hits += static_cast<size_t>((xs[i] >= xmin) & (xs[i] <= xmax) &
                                (ys[i] >= ymin) & (ys[i] <= ymax));
  }
  return hits;
}

size_t CountPairsCenteredScalar(const double* qx, const double* qy,
                                const double* ox, const double* oy, size_t n,
                                double w, double h) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    // Rect::Centered(q, w, h).Contains(o), with the bounds formed by the
    // same q±w / q±h additions Rect::Centered performs.
    const double xlo = qx[i] - w, xhi = qx[i] + w;
    const double ylo = qy[i] - h, yhi = qy[i] + h;
    hits += static_cast<size_t>((ox[i] >= xlo) & (ox[i] <= xhi) &
                                (oy[i] >= ylo) & (oy[i] <= yhi));
  }
  return hits;
}

double DotScalar(const double* a, const double* b, size_t n) {
  // The kFast reduction at the scalar tier: 4 independent accumulators so
  // the adds reassociate the same way the wide tiers' lane sums do in
  // spirit — deterministic, but intentionally not the sequential sum.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace internal

// ---- SSE2 tier ------------------------------------------------------------
// x86-64 baseline: always compiled there, so the SSE2 tier is a real second
// code path even without AVX hardware. 2 lanes per op; odd remainders go
// through the scalar reference.

namespace {

#if defined(__SSE2__)

using internal::KernelOverrides;

// {x0, x1} and {y0, y1} from two adjacent Points (AoS -> SoA for one pair).
inline void LoadPoints2(const Point* pts, __m128d* xs, __m128d* ys) {
  const __m128d a = _mm_loadu_pd(&pts[0].x);  // {x0, y0}
  const __m128d b = _mm_loadu_pd(&pts[1].x);  // {x1, y1}
  *xs = _mm_unpacklo_pd(a, b);
  *ys = _mm_unpackhi_pd(a, b);
}

// std::min(a, b) / std::max(a, b) with exact scalar semantics (see the
// operand-order note at the top of this file).
inline __m128d MinStd2(__m128d a, __m128d b) { return _mm_min_pd(b, a); }
inline __m128d MaxStd2(__m128d a, __m128d b) { return _mm_max_pd(b, a); }

void UniformDensitySse2(const UniformRectParams& p, const Point* pts,
                        size_t n, double* out) {
  const __m128d xmin = _mm_set1_pd(p.xmin), xmax = _mm_set1_pd(p.xmax);
  const __m128d ymin = _mm_set1_pd(p.ymin), ymax = _mm_set1_pd(p.ymax);
  const __m128d inv = _mm_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d xs, ys;
    LoadPoints2(pts + i, &xs, &ys);
    const __m128d m = _mm_and_pd(
        _mm_and_pd(_mm_cmpge_pd(xs, xmin), _mm_cmple_pd(xs, xmax)),
        _mm_and_pd(_mm_cmpge_pd(ys, ymin), _mm_cmple_pd(ys, ymax)));
    _mm_storeu_pd(out + i, _mm_and_pd(m, inv));
  }
  internal::UniformDensityScalar(p, pts + i, n - i, out + i);
}

void UniformMassInSse2(const UniformRectParams& p, const Rect* rects,
                       size_t n, double* out) {
  const __m128d xmin = _mm_set1_pd(p.xmin), xmax = _mm_set1_pd(p.xmax);
  const __m128d ymin = _mm_set1_pd(p.ymin), ymax = _mm_set1_pd(p.ymax);
  const __m128d inv = _mm_set1_pd(p.inv_area);
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Transpose two Rects {xmin,xmax,ymin,ymax} into four 2-lane vectors.
    const __m128d a01 = _mm_loadu_pd(&rects[i].xmin);      // {xmin0, xmax0}
    const __m128d a23 = _mm_loadu_pd(&rects[i].ymin);      // {ymin0, ymax0}
    const __m128d b01 = _mm_loadu_pd(&rects[i + 1].xmin);  // {xmin1, xmax1}
    const __m128d b23 = _mm_loadu_pd(&rects[i + 1].ymin);  // {ymin1, ymax1}
    const __m128d rxmin = _mm_unpacklo_pd(a01, b01);
    const __m128d rxmax = _mm_unpackhi_pd(a01, b01);
    const __m128d rymin = _mm_unpacklo_pd(a23, b23);
    const __m128d rymax = _mm_unpackhi_pd(a23, b23);
    const __m128d w =
        _mm_sub_pd(MinStd2(xmax, rxmax), MaxStd2(xmin, rxmin));
    const __m128d h =
        _mm_sub_pd(MinStd2(ymax, rymax), MaxStd2(ymin, rymin));
    const __m128d area = _mm_mul_pd(MaxStd2(w, zero), MaxStd2(h, zero));
    _mm_storeu_pd(out + i, _mm_mul_pd(area, inv));
  }
  internal::UniformMassInScalar(p, rects + i, n - i, out + i);
}

void UniformMassCenteredSse2(const UniformRectParams& p, const Point* centers,
                             size_t n, double w, double h, double* out) {
  const __m128d xmin = _mm_set1_pd(p.xmin), xmax = _mm_set1_pd(p.xmax);
  const __m128d ymin = _mm_set1_pd(p.ymin), ymax = _mm_set1_pd(p.ymax);
  const __m128d inv = _mm_set1_pd(p.inv_area);
  const __m128d zero = _mm_setzero_pd();
  const __m128d vw = _mm_set1_pd(w), vh = _mm_set1_pd(h);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d cx, cy;
    LoadPoints2(centers + i, &cx, &cy);
    const __m128d ov_w = _mm_sub_pd(MinStd2(xmax, _mm_add_pd(cx, vw)),
                                    MaxStd2(xmin, _mm_sub_pd(cx, vw)));
    const __m128d ov_h = _mm_sub_pd(MinStd2(ymax, _mm_add_pd(cy, vh)),
                                    MaxStd2(ymin, _mm_sub_pd(cy, vh)));
    const __m128d area =
        _mm_mul_pd(MaxStd2(ov_w, zero), MaxStd2(ov_h, zero));
    _mm_storeu_pd(out + i, _mm_mul_pd(area, inv));
  }
  internal::UniformMassCenteredScalar(p, centers + i, n - i, w, h, out + i);
}

void DiskDensitySse2(const DiskParams& p, const Point* pts, size_t n,
                     double* out) {
  const __m128d cx = _mm_set1_pd(p.cx), cy = _mm_set1_pd(p.cy);
  const __m128d r2 = _mm_set1_pd(p.r2);
  const __m128d inv = _mm_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d xs, ys;
    LoadPoints2(pts + i, &xs, &ys);
    const __m128d dx = _mm_sub_pd(cx, xs);
    const __m128d dy = _mm_sub_pd(cy, ys);
    const __m128d d2 =
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    _mm_storeu_pd(out + i, _mm_and_pd(_mm_cmple_pd(d2, r2), inv));
  }
  internal::DiskDensityScalar(p, pts + i, n - i, out + i);
}

size_t CountInRectSse2(double xmin, double xmax, double ymin, double ymax,
                       const double* xs, const double* ys, size_t n) {
  const __m128d lx = _mm_set1_pd(xmin), hx = _mm_set1_pd(xmax);
  const __m128d ly = _mm_set1_pd(ymin), hy = _mm_set1_pd(ymax);
  size_t hits = 0;
  // The sample-block contract pads to a multiple of 8, so running to the
  // next multiple of 2 reads only valid-or-NaN lanes; NaN compares false.
  for (size_t i = 0; i < n; i += 2) {
    const __m128d x = _mm_load_pd(xs + i);
    const __m128d y = _mm_load_pd(ys + i);
    const __m128d m = _mm_and_pd(
        _mm_and_pd(_mm_cmpge_pd(x, lx), _mm_cmple_pd(x, hx)),
        _mm_and_pd(_mm_cmpge_pd(y, ly), _mm_cmple_pd(y, hy)));
    hits += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(m))));
  }
  return hits;
}

size_t CountPairsCenteredSse2(const double* qx, const double* qy,
                              const double* ox, const double* oy, size_t n,
                              double w, double h) {
  const __m128d vw = _mm_set1_pd(w), vh = _mm_set1_pd(h);
  size_t hits = 0;
  for (size_t i = 0; i < n; i += 2) {
    const __m128d qxi = _mm_load_pd(qx + i), qyi = _mm_load_pd(qy + i);
    const __m128d oxi = _mm_load_pd(ox + i), oyi = _mm_load_pd(oy + i);
    const __m128d xlo = _mm_sub_pd(qxi, vw), xhi = _mm_add_pd(qxi, vw);
    const __m128d ylo = _mm_sub_pd(qyi, vh), yhi = _mm_add_pd(qyi, vh);
    const __m128d m = _mm_and_pd(
        _mm_and_pd(_mm_cmpge_pd(oxi, xlo), _mm_cmple_pd(oxi, xhi)),
        _mm_and_pd(_mm_cmpge_pd(oyi, ylo), _mm_cmple_pd(oyi, yhi)));
    hits += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(m))));
  }
  return hits;
}

KernelOverrides Sse2Overrides() {
  KernelOverrides o;
  o.uniform_density = &UniformDensitySse2;
  o.uniform_mass_in = &UniformMassInSse2;
  o.uniform_mass_centered = &UniformMassCenteredSse2;
  o.disk_density = &DiskDensitySse2;
  // histogram_density: the divide/truncate/gather chain has no SSE2 gather;
  // inherits scalar. gaussian_mass_centered: 2 lanes can't amortize the
  // bounds-spill + per-lane transcendental dance — inherits scalar, the
  // AVX2 tier overrides. dot: kFast only — the scalar 4-accumulator form is
  // already the right shape for 128-bit hardware.
  o.count_in_rect = &CountInRectSse2;
  o.count_pairs_centered = &CountPairsCenteredSse2;
  return o;
}

#else  // !defined(__SSE2__)

internal::KernelOverrides Sse2Overrides() { return {}; }

#endif  // defined(__SSE2__)

KernelSet ScalarSet() {
  KernelSet k;
  k.uniform_density = &internal::UniformDensityScalar;
  k.uniform_mass_in = &internal::UniformMassInScalar;
  k.uniform_mass_centered = &internal::UniformMassCenteredScalar;
  k.disk_density = &internal::DiskDensityScalar;
  k.histogram_density = &internal::HistogramDensityScalar;
  k.gaussian_mass_centered = &internal::GaussianMassCenteredScalar;
  k.count_in_rect = &internal::CountInRectScalar;
  k.count_pairs_centered = &internal::CountPairsCenteredScalar;
  k.dot = &internal::DotScalar;
  return k;
}

KernelSet Overlay(KernelSet base, const internal::KernelOverrides& o) {
  if (o.uniform_density) base.uniform_density = o.uniform_density;
  if (o.uniform_mass_in) base.uniform_mass_in = o.uniform_mass_in;
  if (o.uniform_mass_centered) {
    base.uniform_mass_centered = o.uniform_mass_centered;
  }
  if (o.disk_density) base.disk_density = o.disk_density;
  if (o.histogram_density) base.histogram_density = o.histogram_density;
  if (o.gaussian_mass_centered) {
    base.gaussian_mass_centered = o.gaussian_mass_centered;
  }
  if (o.count_in_rect) base.count_in_rect = o.count_in_rect;
  if (o.count_pairs_centered) {
    base.count_pairs_centered = o.count_pairs_centered;
  }
  if (o.dot) base.dot = o.dot;
  return base;
}

std::array<KernelSet, 4> BuildTables() {
  std::array<KernelSet, 4> tables;
  tables[0] = ScalarSet();
  tables[1] = Overlay(tables[0], Sse2Overrides());
  tables[2] = Overlay(tables[1], internal::Avx2Overrides());
  tables[3] = Overlay(tables[2], internal::Avx512Overrides());
  return tables;
}

}  // namespace

const KernelSet& Kernels(SimdLevel level) {
  static const std::array<KernelSet, 4> tables = BuildTables();
  // Clamp defensively: even a raw out-of-range enum can only reach a table
  // the host can execute.
  int idx = static_cast<int>(level);
  const int max = static_cast<int>(DetectedSimdLevel());
  idx = std::clamp(idx, 0, max);
  return tables[static_cast<size_t>(idx)];
}

}  // namespace ilq::simd
