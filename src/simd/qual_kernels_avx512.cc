// AVX-512 tier: 8-lane (__m512d) kernels, compiled with
// -mavx512f -mavx512dq -mavx512vl (plus AVX2+FMA for the int32 helpers).
// Same dispatch/identity rules as the AVX2 TU; mask registers replace the
// compare-blend idiom (_mm512_cmp_pd_mask is ordered-quiet, so NaN padding
// lanes drop out of the masks exactly like they fail the scalar compares,
// and _mm512_maskz_mov_pd writes +0.0 in false lanes, matching the scalar
// `inside ? v : 0.0`).

#include "simd/qual_kernels_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ilq::simd::internal {
namespace {

// {x0..x7} / {y0..y7} from eight adjacent Points (two zmm loads + two
// cross-register even/odd shuffles).
inline void LoadPoints8(const Point* pts, __m512d* xs, __m512d* ys) {
  const __m512d a = _mm512_loadu_pd(&pts[0].x);  // {x0,y0,...,x3,y3}
  const __m512d b = _mm512_loadu_pd(&pts[4].x);  // {x4,y4,...,x7,y7}
  const __m512i even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  *xs = _mm512_permutex2var_pd(a, even, b);
  *ys = _mm512_permutex2var_pd(a, odd, b);
}

// std::min/std::max operand-order emulation (see qual_kernels.cc).
inline __m512d MinStd8(__m512d a, __m512d b) { return _mm512_min_pd(b, a); }
inline __m512d MaxStd8(__m512d a, __m512d b) { return _mm512_max_pd(b, a); }

inline __mmask8 InsideMask8(__m512d xs, __m512d ys, __m512d xmin,
                            __m512d xmax, __m512d ymin, __m512d ymax) {
  const __mmask8 mx = _mm512_cmp_pd_mask(xs, xmin, _CMP_GE_OQ) &
                      _mm512_cmp_pd_mask(xs, xmax, _CMP_LE_OQ);
  const __mmask8 my = _mm512_cmp_pd_mask(ys, ymin, _CMP_GE_OQ) &
                      _mm512_cmp_pd_mask(ys, ymax, _CMP_LE_OQ);
  return mx & my;
}

void UniformDensityAvx512(const UniformRectParams& p, const Point* pts,
                          size_t n, double* out) {
  const __m512d xmin = _mm512_set1_pd(p.xmin), xmax = _mm512_set1_pd(p.xmax);
  const __m512d ymin = _mm512_set1_pd(p.ymin), ymax = _mm512_set1_pd(p.ymax);
  const __m512d inv = _mm512_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d xs, ys;
    LoadPoints8(pts + i, &xs, &ys);
    const __mmask8 m = InsideMask8(xs, ys, xmin, xmax, ymin, ymax);
    _mm512_storeu_pd(out + i, _mm512_maskz_mov_pd(m, inv));
  }
  UniformDensityScalar(p, pts + i, n - i, out + i);
}

void UniformMassInAvx512(const UniformRectParams& p, const Rect* rects,
                         size_t n, double* out) {
  const __m512d xmin = _mm512_set1_pd(p.xmin), xmax = _mm512_set1_pd(p.xmax);
  const __m512d ymin = _mm512_set1_pd(p.ymin), ymax = _mm512_set1_pd(p.ymax);
  const __m512d inv = _mm512_set1_pd(p.inv_area);
  const __m512d zero = _mm512_setzero_pd();
  // One Rect is 4 doubles; stride-4 gathers transpose 8 of them per field.
  const __m256i stride4 =
      _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Full-mask gathers with a zero source: identical results to the plain
    // gather, but without GCC's maybe-uninitialized noise from the
    // undefined source operand inside _mm512_i32gather_pd.
    const __m512d z = _mm512_setzero_pd();
    const __m512d rxmin =
        _mm512_mask_i32gather_pd(z, 0xff, stride4, &rects[i].xmin, 8);
    const __m512d rxmax =
        _mm512_mask_i32gather_pd(z, 0xff, stride4, &rects[i].xmax, 8);
    const __m512d rymin =
        _mm512_mask_i32gather_pd(z, 0xff, stride4, &rects[i].ymin, 8);
    const __m512d rymax =
        _mm512_mask_i32gather_pd(z, 0xff, stride4, &rects[i].ymax, 8);
    const __m512d w =
        _mm512_sub_pd(MinStd8(xmax, rxmax), MaxStd8(xmin, rxmin));
    const __m512d h =
        _mm512_sub_pd(MinStd8(ymax, rymax), MaxStd8(ymin, rymin));
    const __m512d area = _mm512_mul_pd(MaxStd8(w, zero), MaxStd8(h, zero));
    _mm512_storeu_pd(out + i, _mm512_mul_pd(area, inv));
  }
  UniformMassInScalar(p, rects + i, n - i, out + i);
}

void UniformMassCenteredAvx512(const UniformRectParams& p,
                               const Point* centers, size_t n, double w,
                               double h, double* out) {
  const __m512d xmin = _mm512_set1_pd(p.xmin), xmax = _mm512_set1_pd(p.xmax);
  const __m512d ymin = _mm512_set1_pd(p.ymin), ymax = _mm512_set1_pd(p.ymax);
  const __m512d inv = _mm512_set1_pd(p.inv_area);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vw = _mm512_set1_pd(w), vh = _mm512_set1_pd(h);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d cx, cy;
    LoadPoints8(centers + i, &cx, &cy);
    const __m512d ov_w = _mm512_sub_pd(MinStd8(xmax, _mm512_add_pd(cx, vw)),
                                       MaxStd8(xmin, _mm512_sub_pd(cx, vw)));
    const __m512d ov_h = _mm512_sub_pd(MinStd8(ymax, _mm512_add_pd(cy, vh)),
                                       MaxStd8(ymin, _mm512_sub_pd(cy, vh)));
    const __m512d area =
        _mm512_mul_pd(MaxStd8(ov_w, zero), MaxStd8(ov_h, zero));
    _mm512_storeu_pd(out + i, _mm512_mul_pd(area, inv));
  }
  UniformMassCenteredScalar(p, centers + i, n - i, w, h, out + i);
}

void DiskDensityAvx512(const DiskParams& p, const Point* pts, size_t n,
                       double* out) {
  const __m512d cx = _mm512_set1_pd(p.cx), cy = _mm512_set1_pd(p.cy);
  const __m512d r2 = _mm512_set1_pd(p.r2);
  const __m512d inv = _mm512_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d xs, ys;
    LoadPoints8(pts + i, &xs, &ys);
    const __m512d dx = _mm512_sub_pd(cx, xs);
    const __m512d dy = _mm512_sub_pd(cy, ys);
    // mul + mul + add (no FMA): strict-mode identity with contraction off.
    const __m512d d2 =
        _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
    const __mmask8 m = _mm512_cmp_pd_mask(d2, r2, _CMP_LE_OQ);
    _mm512_storeu_pd(out + i, _mm512_maskz_mov_pd(m, inv));
  }
  DiskDensityScalar(p, pts + i, n - i, out + i);
}

void HistogramDensityAvx512(const HistogramParams& p, const Point* pts,
                            size_t n, double* out) {
  const __m512d xmin = _mm512_set1_pd(p.xmin), xmax = _mm512_set1_pd(p.xmax);
  const __m512d ymin = _mm512_set1_pd(p.ymin), ymax = _mm512_set1_pd(p.ymax);
  const __m512d cw = _mm512_set1_pd(p.cell_w), ch = _mm512_set1_pd(p.cell_h);
  const __m512d area = _mm512_set1_pd(p.cell_area);
  const __m256i nx1 = _mm256_set1_epi32(p.nx - 1);
  const __m256i ny1 = _mm256_set1_epi32(p.ny - 1);
  const __m256i nx = _mm256_set1_epi32(p.nx);
  const __m256i izero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d xs, ys;
    LoadPoints8(pts + i, &xs, &ys);
    const __mmask8 inside = InsideMask8(xs, ys, xmin, xmax, ymin, ymax);
    // Same convert/clamp rationale as the AVX2 kernel: inside lanes match
    // the scalar cast, outside lanes clamp to a safe index and are zeroed
    // by the mask below.
    const __m512d fx = _mm512_div_pd(_mm512_sub_pd(xs, xmin), cw);
    const __m512d fy = _mm512_div_pd(_mm512_sub_pd(ys, ymin), ch);
    __m256i ix = _mm512_cvttpd_epi32(fx);
    __m256i iy = _mm512_cvttpd_epi32(fy);
    ix = _mm256_max_epi32(_mm256_min_epi32(ix, nx1), izero);
    iy = _mm256_max_epi32(_mm256_min_epi32(iy, ny1), izero);
    const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(iy, nx), ix);
    const __m512d mass = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xff,
                                                  idx, p.mass, 8);
    const __m512d density = _mm512_div_pd(mass, area);
    _mm512_storeu_pd(out + i, _mm512_maskz_mov_pd(inside, density));
  }
  HistogramDensityScalar(p, pts + i, n - i, out + i);
}

size_t CountInRectAvx512(double xmin, double xmax, double ymin, double ymax,
                         const double* xs, const double* ys, size_t n) {
  const __m512d lx = _mm512_set1_pd(xmin), hx = _mm512_set1_pd(xmax);
  const __m512d ly = _mm512_set1_pd(ymin), hy = _mm512_set1_pd(ymax);
  size_t hits = 0;
  // Sample-block contract: aligned and NaN-padded to a multiple of 8.
  for (size_t i = 0; i < n; i += 8) {
    const __m512d x = _mm512_load_pd(xs + i);
    const __m512d y = _mm512_load_pd(ys + i);
    const __mmask8 m = InsideMask8(x, y, lx, hx, ly, hy);
    hits += static_cast<size_t>(__builtin_popcount(m));
  }
  return hits;
}

size_t CountPairsCenteredAvx512(const double* qx, const double* qy,
                                const double* ox, const double* oy, size_t n,
                                double w, double h) {
  const __m512d vw = _mm512_set1_pd(w), vh = _mm512_set1_pd(h);
  size_t hits = 0;
  for (size_t i = 0; i < n; i += 8) {
    const __m512d qxi = _mm512_load_pd(qx + i);
    const __m512d qyi = _mm512_load_pd(qy + i);
    const __m512d oxi = _mm512_load_pd(ox + i);
    const __m512d oyi = _mm512_load_pd(oy + i);
    const __mmask8 mx =
        _mm512_cmp_pd_mask(oxi, _mm512_sub_pd(qxi, vw), _CMP_GE_OQ) &
        _mm512_cmp_pd_mask(oxi, _mm512_add_pd(qxi, vw), _CMP_LE_OQ);
    const __mmask8 my =
        _mm512_cmp_pd_mask(oyi, _mm512_sub_pd(qyi, vh), _CMP_GE_OQ) &
        _mm512_cmp_pd_mask(oyi, _mm512_add_pd(qyi, vh), _CMP_LE_OQ);
    hits += static_cast<size_t>(__builtin_popcount(mx & my));
  }
  return hits;
}

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd(), acc3 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 16),
                           _mm512_loadu_pd(b + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 24),
                           _mm512_loadu_pd(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  }
  const __m512d acc =
      _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3));
  double total = _mm512_reduce_add_pd(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

}  // namespace

KernelOverrides Avx512Overrides() {
  KernelOverrides o;
  o.uniform_density = &UniformDensityAvx512;
  o.uniform_mass_in = &UniformMassInAvx512;
  o.uniform_mass_centered = &UniformMassCenteredAvx512;
  o.disk_density = &DiskDensityAvx512;
  o.histogram_density = &HistogramDensityAvx512;
  o.count_in_rect = &CountInRectAvx512;
  o.count_pairs_centered = &CountPairsCenteredAvx512;
  o.dot = &DotAvx512;
  return o;
}

}  // namespace ilq::simd::internal

#else  // AVX-512 not targetable by this build

namespace ilq::simd::internal {
KernelOverrides Avx512Overrides() { return {}; }
}  // namespace ilq::simd::internal

#endif
