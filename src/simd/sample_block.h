// SoA Monte-Carlo sample blocks.
//
// The MC qualification loops used to test one freshly sampled Point at a
// time — an AoS access pattern no vector unit can load efficiently, with a
// per-element branch. The blocks below restructure a chunk of samples as
// cache-aligned structure-of-arrays (x[], y[] …), so the count kernels run
// full-width compares over unit-stride lanes.
//
// Tail policy, handled ONCE here instead of per kernel: Seal(n) pads the
// arrays from n up to the next multiple of kLaneAlign with quiet NaNs. All
// count kernels use ordered-quiet compares (false on NaN), so padded lanes
// can never count as hits — kernels simply process PaddedCount(n) lanes
// with no remainder loop and no masking. The blocks are fixed-capacity and
// stack-resident (alignas(64) arrays, no allocation), sized so one
// PairSampleBlock is 8 KiB — four streams staying comfortably within L1
// while amortizing the fill/count call boundary.

#ifndef ILQ_SIMD_SAMPLE_BLOCK_H_
#define ILQ_SIMD_SAMPLE_BLOCK_H_

#include <cstddef>
#include <limits>

#include "geometry/point.h"

namespace ilq::simd {

/// Lane-group granularity the count kernels assume: arrays are readable and
/// NaN-padded up to a multiple of this (8 doubles = one AVX-512 register,
/// two AVX2 registers, four SSE2 registers).
inline constexpr size_t kLaneAlign = 8;

/// \p n rounded up to the next multiple of kLaneAlign.
constexpr size_t PaddedCount(size_t n) {
  return (n + (kLaneAlign - 1)) & ~(kLaneAlign - 1);
}

/// SoA block of single positions (the point-qualification MC stream).
class PointSampleBlock {
 public:
  static constexpr size_t kCapacity = 256;
  static_assert(kCapacity % kLaneAlign == 0);

  /// Stores sample \p i (i < kCapacity).
  void Set(size_t i, const Point& p) {
    x_[i] = p.x;
    y_[i] = p.y;
  }

  /// Marks \p n samples as valid and NaN-pads the tail lane group. Call
  /// after the last Set and before handing the arrays to a count kernel.
  void Seal(size_t n) {
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    for (size_t i = n; i < PaddedCount(n); ++i) {
      x_[i] = kNaN;
      y_[i] = kNaN;
    }
  }

  const double* x() const { return x_; }
  const double* y() const { return y_; }

 private:
  alignas(64) double x_[kCapacity];
  alignas(64) double y_[kCapacity];
};

/// SoA block of (issuer, object) position pairs (the paired-sampling MC
/// stream of Eq. 4).
class PairSampleBlock {
 public:
  static constexpr size_t kCapacity = 256;
  static_assert(kCapacity % kLaneAlign == 0);

  void Set(size_t i, const Point& q, const Point& o) {
    qx_[i] = q.x;
    qy_[i] = q.y;
    ox_[i] = o.x;
    oy_[i] = o.y;
  }

  void Seal(size_t n) {
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    for (size_t i = n; i < PaddedCount(n); ++i) {
      qx_[i] = kNaN;
      qy_[i] = kNaN;
      ox_[i] = kNaN;
      oy_[i] = kNaN;
    }
  }

  const double* qx() const { return qx_; }
  const double* qy() const { return qy_; }
  const double* ox() const { return ox_; }
  const double* oy() const { return oy_; }

 private:
  alignas(64) double qx_[kCapacity];
  alignas(64) double qy_[kCapacity];
  alignas(64) double ox_[kCapacity];
  alignas(64) double oy_[kCapacity];
};

}  // namespace ilq::simd

#endif  // ILQ_SIMD_SAMPLE_BLOCK_H_
