// Cache-line-aligned allocation for SIMD scratch buffers.
//
// The wide kernels use unaligned loads (loadu/storeu), so alignment is a
// throughput knob, not a correctness requirement — but 64-byte-aligned,
// 64-byte-strided arrays keep every 512-bit lane group within one cache
// line and let the hardware prefetcher run clean unit strides. Evaluator
// scratch vectors (issuer-grid weights, per-candidate mass buffers) use
// AlignedVector so the hot dot-product inputs start on a boundary.

#ifndef ILQ_SIMD_ALIGNED_H_
#define ILQ_SIMD_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace ilq::simd {

/// Minimal C++17 allocator that over-aligns every allocation. Stateless:
/// all instances compare equal, so vectors swap/move freely.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ilq::simd

#endif  // ILQ_SIMD_ALIGNED_H_
