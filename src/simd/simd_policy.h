// Process-wide SIMD kernel policy: which vector tier the qualification
// kernels dispatch to, and whether the fast (FMA + reassociation) variants
// are allowed.
//
// Dispatch is two-dimensional:
//
//   * SimdLevel — the instruction-set tier. Detected once at startup
//     (CpuFeatures::Detect), clamped by the ILQ_SIMD_LEVEL environment
//     variable, and overridable per test/bench via SetActiveSimdLevel /
//     ScopedSimdLevel or EngineConfig::simd_level. In the default `strict`
//     variant every tier computes bit-identical results: the wide kernels
//     replay the scalar operation sequence lane-wise with IEEE-exact ops
//     (min/max/sub/mul/div/compare), and the build pins -ffp-contract=off
//     so the scalar path cannot silently contract into FMAs either. The
//     per-tier differential suite (tests/simd_differential_test.cc) pins
//     scalar ≡ SSE2 ≡ AVX2 (≡ AVX-512 where available) for all 8 query
//     methods.
//
//   * KernelVariant — kStrict (default) keeps the bit-identity contract;
//     kFast additionally enables explicitly-FMA'd, reassociated reduction
//     kernels (Gauss–Legendre inner products, the basic-IUQ weighted sum).
//     Fast answers are deterministic for a fixed (tier, variant) but only
//     tolerance-equal to strict (tests/fast_variant_test.cc pins the
//     tolerance). Opt in via ILQ_KERNEL_VARIANT=fast or
//     EngineConfig::kernel_variant.
//
// Both knobs are process-global atomics, read at kernel-dispatch time with
// relaxed ordering: they are tuning state, not synchronization. Flipping
// them concurrently with running queries is safe (every read sees either
// the old or the new policy) but makes answers time-dependent, so tests use
// the Scoped* guards and engines apply their config at Build/OpenPaged.

#ifndef ILQ_SIMD_SIMD_POLICY_H_
#define ILQ_SIMD_SIMD_POLICY_H_

#include <optional>
#include <string>
#include <string_view>

namespace ilq::simd {

/// Instruction-set tiers, ordered: a level implies all lower levels.
enum class SimdLevel : int {
  kScalar = 0,  ///< plain scalar loops (always available, the reference)
  kSse2 = 1,    ///< 128-bit __m128d kernels (baseline on x86-64)
  kAvx2 = 2,    ///< 256-bit kernels (AVX2 + FMA)
  kAvx512 = 3,  ///< 512-bit kernels (requires F + DQ + VL)
};

/// Kernel numeric policy. See the file comment.
enum class KernelVariant : int {
  kStrict = 0,  ///< bit-identical across tiers (default)
  kFast = 1,    ///< FMA + reassociated reductions, tolerance-equal
};

/// One-time CPUID-based capability probe.
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512 = false;  ///< F + DQ + VL (what the wide kernels use)

  /// The highest tier this host can execute. AVX2 kernels also use FMA in
  /// the fast variant, so the AVX2 tier additionally requires FMA (every
  /// AVX2 part since Haswell has it; the gate only matters for emulators).
  SimdLevel MaxLevel() const;

  /// Probes the host CPU (cached after the first call).
  static CpuFeatures Detect();
};

/// Highest tier the host supports, after applying the ILQ_SIMD_LEVEL
/// environment clamp. Computed once; stable for the process lifetime.
SimdLevel DetectedSimdLevel();

/// The tier kernels dispatch to right now. Starts at DetectedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Sets the active tier, clamped to DetectedSimdLevel() (requesting AVX-512
/// on an AVX2 host installs AVX2). Returns the tier actually installed.
SimdLevel SetActiveSimdLevel(SimdLevel level);

/// The numeric variant in effect right now. Starts at kStrict unless
/// ILQ_KERNEL_VARIANT=fast.
KernelVariant ActiveKernelVariant();
void SetActiveKernelVariant(KernelVariant variant);

/// Lower-case names ("scalar", "sse2", "avx2", "avx512" / "strict",
/// "fast") — also the accepted environment-variable spellings.
const char* SimdLevelName(SimdLevel level);
const char* KernelVariantName(KernelVariant variant);

/// Parses the environment spellings; nullopt on anything else.
std::optional<SimdLevel> ParseSimdLevel(std::string_view s);
std::optional<KernelVariant> ParseKernelVariant(std::string_view s);

/// RAII tier override for tests: installs \p level (clamped) on entry,
/// restores the previous active tier on exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ActiveSimdLevel()), installed_(SetActiveSimdLevel(level)) {}
  ~ScopedSimdLevel() { SetActiveSimdLevel(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

  /// The tier actually installed (differs from the request when clamped).
  SimdLevel installed() const { return installed_; }

 private:
  SimdLevel previous_;
  SimdLevel installed_;
};

/// RAII variant override for tests.
class ScopedKernelVariant {
 public:
  explicit ScopedKernelVariant(KernelVariant variant)
      : previous_(ActiveKernelVariant()) {
    SetActiveKernelVariant(variant);
  }
  ~ScopedKernelVariant() { SetActiveKernelVariant(previous_); }
  ScopedKernelVariant(const ScopedKernelVariant&) = delete;
  ScopedKernelVariant& operator=(const ScopedKernelVariant&) = delete;

 private:
  KernelVariant previous_;
};

}  // namespace ilq::simd

#endif  // ILQ_SIMD_SIMD_POLICY_H_
