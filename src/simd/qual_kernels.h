// Explicit-width qualification kernels behind the batch pdf API.
//
// Each SimdLevel owns one immutable KernelSet — a table of function
// pointers for the hot batched operations. Tables are built by overlay:
// the scalar tier is fully populated with the reference loops; each higher
// tier starts from the tier below and overrides only the kernels it
// re-implements wider (a kernel with no profitable wide form — e.g. the
// transcendental-heavy gaussian density — inherits downward, so every slot
// is always callable). Kernels compiled for an ISA the build can't target
// (non-x86, old compiler) simply don't override, and the table degrades to
// scalar with no #ifdef at any call site.
//
// Strict-mode contract: for every level L and every input,
//   Kernels(L).op(args) is bit-identical to Kernels(kScalar).op(args).
// The wide kernels earn this by replaying the scalar operation sequence
// lane-wise using only IEEE-exact operations (compare/min/max/add/sub/mul/
// div, truncating int conversion, gather) with matching operand order, and
// by the build pinning -ffp-contract=off. The only intentionally-different
// kernel is `dot`, which exists for KernelVariant::kFast and is reassociated
// (4 accumulators) + FMA'd by design; strict-mode code never calls it.
//
// Count kernels take SoA arrays from sample_block.h and require the arrays
// to be readable and NaN-padded to PaddedCount(n) — NaN lanes compare false
// and never count, so the kernels have no remainder loop. Batch kernels
// (points/rects in, doubles out) accept any n and handle remainders with an
// internal scalar tail.

#ifndef ILQ_SIMD_QUAL_KERNELS_H_
#define ILQ_SIMD_QUAL_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "simd/simd_policy.h"

namespace ilq::simd {

/// Uniform-rectangle pdf, hoisted for the kernels (bounds + 1/area).
struct UniformRectParams {
  double xmin = 0.0, xmax = 0.0, ymin = 0.0, ymax = 0.0;
  double inv_area = 0.0;
};

/// Uniform-disk pdf: centre, radius², 1/area.
struct DiskParams {
  double cx = 0.0, cy = 0.0, r2 = 0.0;
  double inv_area = 0.0;
};

/// Histogram pdf. `mass` points at the y-major nx×ny cell-mass array and
/// must outlive the call; nx/ny are pre-checked to fit the int32 index
/// arithmetic of the gather kernels (the pdf wrapper falls back to its
/// scalar loop for grids beyond that, identically at every tier).
struct HistogramParams {
  double xmin = 0.0, xmax = 0.0, ymin = 0.0, ymax = 0.0;
  double cell_w = 0.0, cell_h = 0.0;
  double cell_area = 0.0;  ///< cell_w * cell_h, the density divisor
  int32_t nx = 0, ny = 0;
  const double* mass = nullptr;
};

/// Grid sides up to this bound use the gather kernels (indices stay well
/// inside int32 even as iy*nx + ix).
inline constexpr size_t kHistogramKernelMaxCells = 32768;

/// Truncated-gaussian pdf (prob/gaussian_pdf.*), hoisted: region bounds,
/// centre, sigmas, per-axis truncation masses. `normal_cdf` is the standard
/// normal CDF injected by the caller — prob sits *above* simd in the module
/// graph, so the transcendental arrives as data, like HistogramParams::mass.
/// cdf_lo_* are Φ((lo−μ)/σ) per axis, hoisted once per batch; NormalCdf is
/// deterministic, so reusing the precomputed value is bit-identical to the
/// pdf recomputing it inside every Cdf1D call.
struct GaussianParams {
  double xmin = 0.0, xmax = 0.0, ymin = 0.0, ymax = 0.0;
  double mux = 0.0, muy = 0.0;
  double sx = 1.0, sy = 1.0;
  double mass_x = 1.0, mass_y = 1.0;
  double cdf_lo_x = 0.0, cdf_lo_y = 0.0;
  double (*normal_cdf)(double) = nullptr;
};

/// The per-tier dispatch table. All pointers are always non-null.
struct KernelSet {
  /// out[i] = inside(pts[i]) ? inv_area : 0.0
  void (*uniform_density)(const UniformRectParams& p, const Point* pts,
                          size_t n, double* out);
  /// out[i] = clamped-overlap-area(region, rects[i]) * inv_area
  void (*uniform_mass_in)(const UniformRectParams& p, const Rect* rects,
                          size_t n, double* out);
  /// out[i] = clamped-overlap-area(region, centered(centers[i], w, h)) *
  /// inv_area
  void (*uniform_mass_centered)(const UniformRectParams& p,
                                const Point* centers, size_t n, double w,
                                double h, double* out);
  /// out[i] = (|pts[i] - c|² <= r²) ? inv_area : 0.0
  void (*disk_density)(const DiskParams& p, const Point* pts, size_t n,
                       double* out);
  /// out[i] = cell_mass(pts[i]) / cell_area, 0 outside the region
  void (*histogram_density)(const HistogramParams& p, const Point* pts,
                            size_t n, double* out);
  /// out[i] = truncated-gaussian mass of region ∩ centered(centers[i], w, h):
  /// product of per-axis interval CDFs, 0 when the intersection is empty —
  /// replays TruncatedGaussianPdf::MassIn(Rect::Centered(...)) bit-for-bit.
  void (*gaussian_mass_centered)(const GaussianParams& p, const Point* centers,
                                 size_t n, double w, double h, double* out);
  /// #{i < n : (xs[i], ys[i]) ∈ [xmin,xmax]×[ymin,ymax]} over NaN-padded
  /// SoA arrays (sample_block.h contract). An empty rect (min > max)
  /// counts nothing, matching Rect::Contains.
  size_t (*count_in_rect)(double xmin, double xmax, double ymin, double ymax,
                          const double* xs, const double* ys, size_t n);
  /// #{i < n : (ox[i], oy[i]) ∈ centered((qx[i], qy[i]), w, h)} over
  /// NaN-padded SoA arrays.
  size_t (*count_pairs_centered)(const double* qx, const double* qy,
                                 const double* ox, const double* oy, size_t n,
                                 double w, double h);
  /// Σ a[i]·b[i] — the KernelVariant::kFast reduction: 4 independent
  /// accumulators, FMA where the tier has it. Deterministic per tier, NOT
  /// bit-identical across tiers or to a sequential sum.
  double (*dot)(const double* a, const double* b, size_t n);
};

/// The immutable table for \p level (clamped to DetectedSimdLevel()).
const KernelSet& Kernels(SimdLevel level);

/// The table for the currently active tier — what the pdf batch entry
/// points call.
inline const KernelSet& ActiveKernels() { return Kernels(ActiveSimdLevel()); }

}  // namespace ilq::simd

#endif  // ILQ_SIMD_QUAL_KERNELS_H_
