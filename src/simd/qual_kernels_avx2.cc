// AVX2 tier: 4-lane (__m256d) kernels. Compiled with -mavx2 -mfma (see
// src/simd/CMakeLists.txt); when the compiler can't target AVX2 the whole
// body compiles away and Avx2Overrides() returns nulls, so the tier
// inherits SSE2/scalar. Only this TU may use AVX intrinsics — everything
// else in the library builds for the baseline ISA, and runtime dispatch
// (simd_policy.h) guarantees these functions are only ever called on hosts
// that executed __builtin_cpu_supports("avx2").
//
// Strict bit-identity is earned the same way as the SSE2 tier: exact IEEE
// lane ops, std::min/std::max operand-order emulation, ordered-quiet
// compares, and explicit non-FMA mul/add sequences (the `dot` kernel is the
// one deliberate exception — it exists for KernelVariant::kFast).

#include "simd/qual_kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ilq::simd::internal {
namespace {

// {x0..x3} / {y0..y3} from four adjacent Points.
inline void LoadPoints4(const Point* pts, __m256d* xs, __m256d* ys) {
  const __m256d a = _mm256_loadu_pd(&pts[0].x);  // {x0, y0, x1, y1}
  const __m256d b = _mm256_loadu_pd(&pts[2].x);  // {x2, y2, x3, y3}
  const __m256d lo = _mm256_permute2f128_pd(a, b, 0x20);  // {x0,y0,x2,y2}
  const __m256d hi = _mm256_permute2f128_pd(a, b, 0x31);  // {x1,y1,x3,y3}
  *xs = _mm256_unpacklo_pd(lo, hi);
  *ys = _mm256_unpackhi_pd(lo, hi);
}

// std::min(a, b) / std::max(a, b) semantics: vminpd/vmaxpd return src2 on a
// false compare, std::min returns its first argument on a tie or NaN-in-b —
// swapping operands makes the lanes match exactly (see qual_kernels.cc).
inline __m256d MinStd4(__m256d a, __m256d b) { return _mm256_min_pd(b, a); }
inline __m256d MaxStd4(__m256d a, __m256d b) { return _mm256_max_pd(b, a); }

inline __m256d InsideMask4(__m256d xs, __m256d ys, __m256d xmin, __m256d xmax,
                           __m256d ymin, __m256d ymax) {
  return _mm256_and_pd(
      _mm256_and_pd(_mm256_cmp_pd(xs, xmin, _CMP_GE_OQ),
                    _mm256_cmp_pd(xs, xmax, _CMP_LE_OQ)),
      _mm256_and_pd(_mm256_cmp_pd(ys, ymin, _CMP_GE_OQ),
                    _mm256_cmp_pd(ys, ymax, _CMP_LE_OQ)));
}

void UniformDensityAvx2(const UniformRectParams& p, const Point* pts,
                        size_t n, double* out) {
  const __m256d xmin = _mm256_set1_pd(p.xmin), xmax = _mm256_set1_pd(p.xmax);
  const __m256d ymin = _mm256_set1_pd(p.ymin), ymax = _mm256_set1_pd(p.ymax);
  const __m256d inv = _mm256_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d xs, ys;
    LoadPoints4(pts + i, &xs, &ys);
    const __m256d m = InsideMask4(xs, ys, xmin, xmax, ymin, ymax);
    _mm256_storeu_pd(out + i, _mm256_and_pd(m, inv));
  }
  UniformDensityScalar(p, pts + i, n - i, out + i);
}

void UniformMassInAvx2(const UniformRectParams& p, const Rect* rects,
                       size_t n, double* out) {
  const __m256d xmin = _mm256_set1_pd(p.xmin), xmax = _mm256_set1_pd(p.xmax);
  const __m256d ymin = _mm256_set1_pd(p.ymin), ymax = _mm256_set1_pd(p.ymax);
  const __m256d inv = _mm256_set1_pd(p.inv_area);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // 4x4 transpose of four Rect{xmin, xmax, ymin, ymax} rows.
    const __m256d r0 = _mm256_loadu_pd(&rects[i].xmin);
    const __m256d r1 = _mm256_loadu_pd(&rects[i + 1].xmin);
    const __m256d r2 = _mm256_loadu_pd(&rects[i + 2].xmin);
    const __m256d r3 = _mm256_loadu_pd(&rects[i + 3].xmin);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // {xmin0,xmin1,ymin0,ymin1}
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // {xmax0,xmax1,ymax0,ymax1}
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    const __m256d rxmin = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d rymin = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d rxmax = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d rymax = _mm256_permute2f128_pd(t1, t3, 0x31);
    const __m256d w =
        _mm256_sub_pd(MinStd4(xmax, rxmax), MaxStd4(xmin, rxmin));
    const __m256d h =
        _mm256_sub_pd(MinStd4(ymax, rymax), MaxStd4(ymin, rymin));
    const __m256d area = _mm256_mul_pd(MaxStd4(w, zero), MaxStd4(h, zero));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(area, inv));
  }
  UniformMassInScalar(p, rects + i, n - i, out + i);
}

void UniformMassCenteredAvx2(const UniformRectParams& p, const Point* centers,
                             size_t n, double w, double h, double* out) {
  const __m256d xmin = _mm256_set1_pd(p.xmin), xmax = _mm256_set1_pd(p.xmax);
  const __m256d ymin = _mm256_set1_pd(p.ymin), ymax = _mm256_set1_pd(p.ymax);
  const __m256d inv = _mm256_set1_pd(p.inv_area);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vw = _mm256_set1_pd(w), vh = _mm256_set1_pd(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d cx, cy;
    LoadPoints4(centers + i, &cx, &cy);
    const __m256d ov_w = _mm256_sub_pd(MinStd4(xmax, _mm256_add_pd(cx, vw)),
                                       MaxStd4(xmin, _mm256_sub_pd(cx, vw)));
    const __m256d ov_h = _mm256_sub_pd(MinStd4(ymax, _mm256_add_pd(cy, vh)),
                                       MaxStd4(ymin, _mm256_sub_pd(cy, vh)));
    const __m256d area =
        _mm256_mul_pd(MaxStd4(ov_w, zero), MaxStd4(ov_h, zero));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(area, inv));
  }
  UniformMassCenteredScalar(p, centers + i, n - i, w, h, out + i);
}

void DiskDensityAvx2(const DiskParams& p, const Point* pts, size_t n,
                     double* out) {
  const __m256d cx = _mm256_set1_pd(p.cx), cy = _mm256_set1_pd(p.cy);
  const __m256d r2 = _mm256_set1_pd(p.r2);
  const __m256d inv = _mm256_set1_pd(p.inv_area);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d xs, ys;
    LoadPoints4(pts + i, &xs, &ys);
    const __m256d dx = _mm256_sub_pd(cx, xs);
    const __m256d dy = _mm256_sub_pd(cy, ys);
    // mul + mul + add, never fmadd: strict mode matches the scalar
    // dx*dx + dy*dy compiled with contraction off.
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    const __m256d m = _mm256_cmp_pd(d2, r2, _CMP_LE_OQ);
    _mm256_storeu_pd(out + i, _mm256_and_pd(m, inv));
  }
  DiskDensityScalar(p, pts + i, n - i, out + i);
}

void HistogramDensityAvx2(const HistogramParams& p, const Point* pts,
                          size_t n, double* out) {
  const __m256d xmin = _mm256_set1_pd(p.xmin), xmax = _mm256_set1_pd(p.xmax);
  const __m256d ymin = _mm256_set1_pd(p.ymin), ymax = _mm256_set1_pd(p.ymax);
  const __m256d cw = _mm256_set1_pd(p.cell_w), ch = _mm256_set1_pd(p.cell_h);
  const __m256d area = _mm256_set1_pd(p.cell_area);
  const __m128i nx1 = _mm_set1_epi32(p.nx - 1);
  const __m128i ny1 = _mm_set1_epi32(p.ny - 1);
  const __m128i nx = _mm_set1_epi32(p.nx);
  const __m128i izero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d xs, ys;
    LoadPoints4(pts + i, &xs, &ys);
    const __m256d inside = InsideMask4(xs, ys, xmin, xmax, ymin, ymax);
    // Truncating convert matches the scalar size_t cast for inside lanes
    // (their quotients are in [0, nx]); outside lanes may convert to the
    // 0x80000000 indefinite, which the [0, n-1] clamp sends to a safe
    // in-bounds index — their result is masked to 0 below anyway.
    const __m256d fx = _mm256_div_pd(_mm256_sub_pd(xs, xmin), cw);
    const __m256d fy = _mm256_div_pd(_mm256_sub_pd(ys, ymin), ch);
    __m128i ix = _mm256_cvttpd_epi32(fx);
    __m128i iy = _mm256_cvttpd_epi32(fy);
    ix = _mm_max_epi32(_mm_min_epi32(ix, nx1), izero);
    iy = _mm_max_epi32(_mm_min_epi32(iy, ny1), izero);
    const __m128i idx = _mm_add_epi32(_mm_mullo_epi32(iy, nx), ix);
    // Masked gather with a full mask and zero source: identical to the
    // plain gather, but avoids GCC's maybe-uninitialized noise from the
    // _mm256_undefined_pd() source inside _mm256_i32gather_pd.
    const __m256d allset =
        _mm256_castsi256_pd(_mm256_set1_epi64x(int64_t{-1}));
    const __m256d mass = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                  p.mass, idx, allset, 8);
    const __m256d density = _mm256_div_pd(mass, area);
    _mm256_storeu_pd(out + i, _mm256_and_pd(density, inside));
  }
  HistogramDensityScalar(p, pts + i, n - i, out + i);
}

void GaussianMassCenteredAvx2(const GaussianParams& p, const Point* centers,
                              size_t n, double w, double h, double* out) {
  // The erf-bound mass kernel: the intersection bounds and the empty test
  // vectorize (4 lanes of min/max + one ordered-GT compare), which is where
  // candidate filtering spends its time — most probe boxes miss or barely
  // graze the pdf region. Lanes that survive pay the transcendental through
  // the same GaussianCdf1D helper as the scalar tier, so the CDF path is
  // literally the same code. MinStd4/MaxStd4 reproduce the scalar kernel's
  // std::min/std::max operand order (NaN probe bounds lose to the region
  // bounds), and the empty mask uses _CMP_GT_OQ in the scalar test's own
  // sense (`min > max`, false on NaN) — both NaN corner cases match lane
  // for lane.
  const __m256d xmin = _mm256_set1_pd(p.xmin), xmax = _mm256_set1_pd(p.xmax);
  const __m256d ymin = _mm256_set1_pd(p.ymin), ymax = _mm256_set1_pd(p.ymax);
  const __m256d vw = _mm256_set1_pd(w), vh = _mm256_set1_pd(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d cx, cy;
    LoadPoints4(centers + i, &cx, &cy);
    const __m256d ixmin = MaxStd4(xmin, _mm256_sub_pd(cx, vw));
    const __m256d ixmax = MinStd4(xmax, _mm256_add_pd(cx, vw));
    const __m256d iymin = MaxStd4(ymin, _mm256_sub_pd(cy, vh));
    const __m256d iymax = MinStd4(ymax, _mm256_add_pd(cy, vh));
    const __m256d empty =
        _mm256_or_pd(_mm256_cmp_pd(ixmin, ixmax, _CMP_GT_OQ),
                     _mm256_cmp_pd(iymin, iymax, _CMP_GT_OQ));
    const auto em = static_cast<unsigned>(_mm256_movemask_pd(empty));
    if (em == 0xF) {
      _mm256_storeu_pd(out + i, _mm256_setzero_pd());
      continue;
    }
    alignas(32) double bx0[4], bx1[4], by0[4], by1[4];
    _mm256_store_pd(bx0, ixmin);
    _mm256_store_pd(bx1, ixmax);
    _mm256_store_pd(by0, iymin);
    _mm256_store_pd(by1, iymax);
    for (size_t lane = 0; lane < 4; ++lane) {
      if ((em >> lane) & 1u) {
        out[i + lane] = 0.0;
        continue;
      }
      const double fx =
          GaussianCdf1D(bx1[lane], p.mux, p.sx, p.xmin, p.xmax, p.mass_x,
                        p.cdf_lo_x, p.normal_cdf) -
          GaussianCdf1D(bx0[lane], p.mux, p.sx, p.xmin, p.xmax, p.mass_x,
                        p.cdf_lo_x, p.normal_cdf);
      const double fy =
          GaussianCdf1D(by1[lane], p.muy, p.sy, p.ymin, p.ymax, p.mass_y,
                        p.cdf_lo_y, p.normal_cdf) -
          GaussianCdf1D(by0[lane], p.muy, p.sy, p.ymin, p.ymax, p.mass_y,
                        p.cdf_lo_y, p.normal_cdf);
      out[i + lane] = fx * fy;
    }
  }
  GaussianMassCenteredScalar(p, centers + i, n - i, w, h, out + i);
}

size_t CountInRectAvx2(double xmin, double xmax, double ymin, double ymax,
                       const double* xs, const double* ys, size_t n) {
  const __m256d lx = _mm256_set1_pd(xmin), hx = _mm256_set1_pd(xmax);
  const __m256d ly = _mm256_set1_pd(ymin), hy = _mm256_set1_pd(ymax);
  size_t hits = 0;
  // Sample-block contract: aligned, NaN-padded to a multiple of 8 — no
  // remainder loop, padding lanes fail the ordered compares.
  for (size_t i = 0; i < n; i += 4) {
    const __m256d x = _mm256_load_pd(xs + i);
    const __m256d y = _mm256_load_pd(ys + i);
    const __m256d m = InsideMask4(x, y, lx, hx, ly, hy);
    hits += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(m))));
  }
  return hits;
}

size_t CountPairsCenteredAvx2(const double* qx, const double* qy,
                              const double* ox, const double* oy, size_t n,
                              double w, double h) {
  const __m256d vw = _mm256_set1_pd(w), vh = _mm256_set1_pd(h);
  size_t hits = 0;
  for (size_t i = 0; i < n; i += 4) {
    const __m256d qxi = _mm256_load_pd(qx + i);
    const __m256d qyi = _mm256_load_pd(qy + i);
    const __m256d oxi = _mm256_load_pd(ox + i);
    const __m256d oyi = _mm256_load_pd(oy + i);
    const __m256d m = _mm256_and_pd(
        _mm256_and_pd(
            _mm256_cmp_pd(oxi, _mm256_sub_pd(qxi, vw), _CMP_GE_OQ),
            _mm256_cmp_pd(oxi, _mm256_add_pd(qxi, vw), _CMP_LE_OQ)),
        _mm256_and_pd(
            _mm256_cmp_pd(oyi, _mm256_sub_pd(qyi, vh), _CMP_GE_OQ),
            _mm256_cmp_pd(oyi, _mm256_add_pd(qyi, vh), _CMP_LE_OQ)));
    hits += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(m))));
  }
  return hits;
}

double DotAvx2(const double* a, const double* b, size_t n) {
  // The kFast reduction: 4 independent FMA chains hide the 4-5 cycle FMA
  // latency; deterministic for this tier, tolerance-equal to strict.
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  const __m256d acc01 = _mm256_add_pd(acc0, acc1);
  const __m256d acc23 = _mm256_add_pd(acc2, acc3);
  const __m256d acc = _mm256_add_pd(acc01, acc23);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  double total =
      _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

}  // namespace

KernelOverrides Avx2Overrides() {
  KernelOverrides o;
  o.uniform_density = &UniformDensityAvx2;
  o.uniform_mass_in = &UniformMassInAvx2;
  o.uniform_mass_centered = &UniformMassCenteredAvx2;
  o.disk_density = &DiskDensityAvx2;
  o.histogram_density = &HistogramDensityAvx2;
  o.gaussian_mass_centered = &GaussianMassCenteredAvx2;
  o.count_in_rect = &CountInRectAvx2;
  o.count_pairs_centered = &CountPairsCenteredAvx2;
  o.dot = &DotAvx2;
  return o;
}

}  // namespace ilq::simd::internal

#else  // !(__AVX2__ && __FMA__)

namespace ilq::simd::internal {
KernelOverrides Avx2Overrides() { return {}; }
}  // namespace ilq::simd::internal

#endif
