#include "simd/simd_policy.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ilq::simd {

namespace {

SimdLevel ClampLevel(SimdLevel level, SimdLevel max) {
  if (static_cast<int>(level) < 0) return SimdLevel::kScalar;
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

// ILQ_SIMD_LEVEL caps what DetectedSimdLevel reports, so every later
// SetActiveSimdLevel clamps against the env-capped value too — a forced-
// scalar CI job stays scalar even when a test asks for AVX2.
SimdLevel ComputeDetectedLevel() {
  SimdLevel level = CpuFeatures::Detect().MaxLevel();
  const char* env = std::getenv("ILQ_SIMD_LEVEL");
  if (env != nullptr && *env != '\0') {
    const std::optional<SimdLevel> requested = ParseSimdLevel(env);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "ILQ_SIMD_LEVEL=%s not recognized (want scalar, sse2, "
                   "avx2, or avx512); using detected %s\n",
                   env, SimdLevelName(level));
    } else if (static_cast<int>(*requested) > static_cast<int>(level)) {
      std::fprintf(stderr,
                   "ILQ_SIMD_LEVEL=%s exceeds host support; clamping to "
                   "%s\n",
                   env, SimdLevelName(level));
    } else {
      level = *requested;
    }
  }
  return level;
}

KernelVariant ComputeInitialVariant() {
  const char* env = std::getenv("ILQ_KERNEL_VARIANT");
  if (env == nullptr || *env == '\0') return KernelVariant::kStrict;
  const std::optional<KernelVariant> parsed = ParseKernelVariant(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "ILQ_KERNEL_VARIANT=%s not recognized (want strict or "
                 "fast); using strict\n",
                 env);
    return KernelVariant::kStrict;
  }
  return *parsed;
}

std::atomic<SimdLevel>& ActiveLevelState() {
  static std::atomic<SimdLevel> state{DetectedSimdLevel()};
  return state;
}

std::atomic<KernelVariant>& ActiveVariantState() {
  static std::atomic<KernelVariant> state{ComputeInitialVariant()};
  return state;
}

}  // namespace

SimdLevel CpuFeatures::MaxLevel() const {
  if (avx512 && avx2 && fma) return SimdLevel::kAvx512;
  if (avx2 && fma) return SimdLevel::kAvx2;
  if (sse2) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

CpuFeatures CpuFeatures::Detect() {
  static const CpuFeatures cached = [] {
    CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    f.sse2 = __builtin_cpu_supports("sse2");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
    f.avx512 = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512dq") &&
               __builtin_cpu_supports("avx512vl");
#endif
    return f;
  }();
  return cached;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = ComputeDetectedLevel();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  return ActiveLevelState().load(std::memory_order_relaxed);
}

SimdLevel SetActiveSimdLevel(SimdLevel level) {
  const SimdLevel installed = ClampLevel(level, DetectedSimdLevel());
  ActiveLevelState().store(installed, std::memory_order_relaxed);
  return installed;
}

KernelVariant ActiveKernelVariant() {
  return ActiveVariantState().load(std::memory_order_relaxed);
}

void SetActiveKernelVariant(KernelVariant variant) {
  ActiveVariantState().store(variant, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const char* KernelVariantName(KernelVariant variant) {
  return variant == KernelVariant::kFast ? "fast" : "strict";
}

std::optional<SimdLevel> ParseSimdLevel(std::string_view s) {
  if (s == "scalar") return SimdLevel::kScalar;
  if (s == "sse2") return SimdLevel::kSse2;
  if (s == "avx2") return SimdLevel::kAvx2;
  if (s == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

std::optional<KernelVariant> ParseKernelVariant(std::string_view s) {
  if (s == "strict") return KernelVariant::kStrict;
  if (s == "fast") return KernelVariant::kFast;
  return std::nullopt;
}

}  // namespace ilq::simd
