// Internal seams between the per-ISA translation units.
//
// The AVX2/AVX-512 kernels live in their own TUs compiled with per-file
// -m flags (see src/simd/CMakeLists.txt); everything they export funnels
// through one Overrides struct so qual_kernels.cc can overlay the dispatch
// tables without knowing which TUs actually produced code. A TU whose ISA
// the build can't target returns an all-null Overrides (its #if body
// compiles away), and the tier inherits the one below.
//
// The scalar reference kernels are also declared here: the wide kernels
// call them for remainder tails, which keeps tail semantics trivially
// identical to the scalar tier.

#ifndef ILQ_SIMD_QUAL_KERNELS_INTERNAL_H_
#define ILQ_SIMD_QUAL_KERNELS_INTERNAL_H_

#include "simd/qual_kernels.h"

namespace ilq::simd::internal {

/// Nullable mirror of KernelSet: a null member means "inherit from the
/// tier below".
struct KernelOverrides {
  void (*uniform_density)(const UniformRectParams&, const Point*, size_t,
                          double*) = nullptr;
  void (*uniform_mass_in)(const UniformRectParams&, const Rect*, size_t,
                          double*) = nullptr;
  void (*uniform_mass_centered)(const UniformRectParams&, const Point*,
                                size_t, double, double, double*) = nullptr;
  void (*disk_density)(const DiskParams&, const Point*, size_t,
                       double*) = nullptr;
  void (*histogram_density)(const HistogramParams&, const Point*, size_t,
                            double*) = nullptr;
  void (*gaussian_mass_centered)(const GaussianParams&, const Point*, size_t,
                                 double, double, double*) = nullptr;
  size_t (*count_in_rect)(double, double, double, double, const double*,
                          const double*, size_t) = nullptr;
  size_t (*count_pairs_centered)(const double*, const double*, const double*,
                                 const double*, size_t, double,
                                 double) = nullptr;
  double (*dot)(const double*, const double*, size_t) = nullptr;
};

/// Defined in qual_kernels_avx2.cc / qual_kernels_avx512.cc.
KernelOverrides Avx2Overrides();
KernelOverrides Avx512Overrides();

// Scalar reference kernels (qual_kernels.cc) — used by wide kernels for
// tails, by the scalar table, and by the kernel tests as the oracle.
void UniformDensityScalar(const UniformRectParams& p, const Point* pts,
                          size_t n, double* out);
void UniformMassInScalar(const UniformRectParams& p, const Rect* rects,
                         size_t n, double* out);
void UniformMassCenteredScalar(const UniformRectParams& p,
                               const Point* centers, size_t n, double w,
                               double h, double* out);
void DiskDensityScalar(const DiskParams& p, const Point* pts, size_t n,
                       double* out);
void HistogramDensityScalar(const HistogramParams& p, const Point* pts,
                            size_t n, double* out);
void GaussianMassCenteredScalar(const GaussianParams& p, const Point* centers,
                                size_t n, double w, double h, double* out);
size_t CountInRectScalar(double xmin, double xmax, double ymin, double ymax,
                         const double* xs, const double* ys, size_t n);
size_t CountPairsCenteredScalar(const double* qx, const double* qy,
                                const double* ox, const double* oy, size_t n,
                                double w, double h);
double DotScalar(const double* a, const double* b, size_t n);

/// TruncatedGaussianPdf::Cdf1D with Φ((lo−μ)/σ) hoisted into `cdf_lo`.
/// Shared by the scalar kernel and the wide tiers' per-lane interval math so
/// every tier evaluates the transcendental path through the same code.
inline double GaussianCdf1D(double v, double mu, double sigma, double lo,
                            double hi, double z_mass, double cdf_lo,
                            double (*normal_cdf)(double)) {
  if (v <= lo) return 0.0;
  if (v >= hi) return 1.0;
  return (normal_cdf((v - mu) / sigma) - cdf_lo) / z_mass;
}

}  // namespace ilq::simd::internal

#endif  // ILQ_SIMD_QUAL_KERNELS_INTERNAL_H_
